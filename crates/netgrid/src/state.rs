//! Transport-free server state: [`SchedulerCore`] plus everything the
//! wire adds on top.
//!
//! The simulator and the live server share one scheduling brain
//! (`gridsim::SchedulerCore`: queue order, redundancy, deadlines,
//! reissue causes, the day-110 validation-policy switch). What the wire
//! adds — and what lives here — is the part the simulator abstracts
//! away:
//!
//! * **real payloads**: results are actual [`DockingOutput`]s, so
//!   quorum comparison is a byte-level fingerprint match and bounds
//!   checking runs the real §5.2 value checks, instead of the
//!   simulator's boolean `error` flag;
//! * **real deadlines**: replica expiry is tracked against wall-clock
//!   seconds and swept periodically, instead of a scheduled sim event;
//! * **double-report protection**: the core asserts each replica reports
//!   once; TCP peers can retransmit, so the wire layer must deduplicate
//!   before calling in;
//! * **per-agent backoff** when a fetch finds no work.
//!
//! `GridState` is deliberately transport-free (time is an explicit
//! argument, no sockets): the parity test drives it and a bare
//! `SchedulerCore` through one scripted history and asserts identical
//! decisions, which is what "the simulator and the live grid share one
//! scheduler" *means* operationally.

use crate::campaign::NetCampaign;
use crate::faults::ServerFaults;
use crate::journal::{Journal, JournalRecord};
use crate::protocol::fnv1a64;
use crate::shard::{self, ShardSpec};
use crate::trust::{spot_selected, AgentTrust, TrustBand};
use gridsim::server::{
    CoreSnapshot, ReplicaAssignment, ReplicaId, ReplicationOverride, SchedulerCore, ServerConfig,
    ServerStats,
};
use gridsim::SimTime;
use gridsim::{ReceptorProgress, WuStateCounts};
use maxdo::DockingOutput;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use telemetry::{self, Event};
use validation::{checks::check_file, ValueRanges};

/// Reply to a work request.
#[derive(Debug)]
pub enum WorkReply {
    /// One replica to compute.
    Assigned(ReplicaAssignment),
    /// Nothing issuable; retry after the per-agent backoff.
    Backoff {
        /// Suggested wait, ms.
        retry_after_ms: u64,
        /// True once the campaign is fully validated.
        campaign_complete: bool,
    },
}

/// How a reported result was judged.
///
/// Serializable because the journal records the live verdict of every
/// report and replay asserts it is reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Validated its workunit (alone under bounds-check, or as the
    /// matching half of a quorum pair).
    Accepted,
    /// First valid result of a quorum pair; waiting for its partner.
    QuorumPending,
    /// Disagreed byte-for-byte with every stored candidate.
    QuorumRejected,
    /// Failed the §5.2 value checks outright.
    BoundsRejected,
    /// A retransmission of a replica already reported — dropped.
    Duplicate,
    /// Valid, but its workunit had already validated (paper: counted,
    /// redundant).
    Late,
    /// A spot-check recomputation that byte-matched the accepted
    /// single-replica result it was auditing.
    SpotConfirmed,
    /// A spot-check recomputation that disagreed with the accepted
    /// result: the audited agent's trust craters and its unconfirmed
    /// singles are retracted for re-replication.
    SpotMismatch,
    /// A spot-check whose target workunit was retracted while the check
    /// was in flight — nothing left to compare against.
    SpotVoid,
}

/// Everything the transport needs to answer a `ResultReport`.
#[derive(Debug, Clone, Copy)]
pub struct ResultDisposition {
    /// How the result was judged.
    pub verdict: Verdict,
    /// Whether this result completed (validated) its workunit.
    pub completed_workunit: bool,
    /// Whether the whole campaign is now validated.
    pub campaign_complete: bool,
}

/// Wire-level counters, alongside the core's [`ServerStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetStats {
    /// Results rejected by byte-level quorum comparison.
    pub quorum_rejected: u64,
    /// Results rejected by the §5.2 bounds checks.
    pub bounds_rejected: u64,
    /// Duplicate reports dropped at the wire layer.
    pub duplicates_dropped: u64,
    /// Replica deadlines expired by the sweeper.
    pub deadline_expiries: u64,
    /// Fetches answered with a backoff.
    pub backoffs_sent: u64,
    /// Fetches denied because the agent is quarantined (a subset of
    /// `backoffs_sent`).
    #[serde(default)]
    pub trust_denied_fetches: u64,
    /// Spot-check recomputations that byte-matched the audited result.
    #[serde(default)]
    pub spot_checks_passed: u64,
    /// Spot-check recomputations that mismatched (each craters the
    /// audited agent's trust).
    #[serde(default)]
    pub spot_checks_failed: u64,
    /// Validated workunits retracted after a failed spot check.
    #[serde(default)]
    pub workunits_invalidated: u64,
    /// Work requests answered with a `Redirect` to a peer shard.
    #[serde(default)]
    pub shard_redirects: u64,
    /// Leases granted to hungry peer shards.
    #[serde(default)]
    pub shard_leases_out: u64,
    /// Leases adopted from loaded peer shards.
    #[serde(default)]
    pub shard_leases_in: u64,
    /// Workunits whose ownership left with an outbound lease.
    #[serde(default)]
    pub shard_wus_leased_out: u64,
    /// Workunits whose ownership arrived with an inbound lease.
    #[serde(default)]
    pub shard_wus_leased_in: u64,
}

struct Tele {
    quorum_rejected: &'static telemetry::Counter,
    bounds_rejected: &'static telemetry::Counter,
    duplicates: &'static telemetry::Counter,
    expiries: &'static telemetry::Counter,
    backoffs: &'static telemetry::Counter,
    accepted: &'static telemetry::Counter,
}

impl Tele {
    fn new() -> Self {
        Self {
            quorum_rejected: telemetry::counter("net.results.quorum_rejected"),
            bounds_rejected: telemetry::counter("net.results.bounds_rejected"),
            duplicates: telemetry::counter("net.results.duplicates"),
            expiries: telemetry::counter("net.replicas.expired"),
            backoffs: telemetry::counter("net.fetch.backoffs"),
            accepted: telemetry::counter("net.results.accepted"),
        }
    }
}

/// Per-agent accounting for the ops endpoint's fleet table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AgentLedger {
    /// Replicas assigned to this agent.
    pub assignments: u64,
    /// Results this agent reported (all verdicts).
    pub reports: u64,
    /// Reports that validated a workunit.
    pub accepted: u64,
    /// Reports rejected by quorum comparison or bounds checks.
    pub rejected: u64,
    /// Server-clock second of the agent's last fetch or report.
    pub last_seen_s: f64,
}

/// End-of-run trust accounting; see [`GridState::trust_summary`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustSummary {
    /// Agents whose history earns single-replica issues.
    pub trusted: usize,
    /// Agents on the standard quorum (newcomers and middling scores).
    pub probation: usize,
    /// Agents under forced quorum.
    pub untrusted: usize,
    /// Agents currently serving quarantine.
    pub quarantined: usize,
    /// Agents quarantined at least once over the campaign.
    pub ever_quarantined: usize,
    /// Spot checks that byte-matched the audited result.
    pub spot_checks_passed: u64,
    /// Spot checks that mismatched.
    pub spot_checks_failed: u64,
}

/// Journal health as seen by the ops endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalOps {
    /// Snapshot epoch (bumped by each compacting snapshot).
    pub epoch: u64,
    /// Wal frames appended since the last compacting snapshot.
    pub wal_appends_since_snapshot: u64,
}

/// Shard identity and ownership as seen by the ops endpoint; `None`
/// when the server runs unsharded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardOps {
    /// This server's shard id.
    pub shard_id: u16,
    /// Total shards in the topology.
    pub shards: u16,
    /// Workunits this shard currently owns (leases shift it).
    pub owned_workunits: u64,
    /// Owned workunits never yet issued — the steerable backlog.
    pub fresh_backlog: u64,
}

/// One campaign's row in the ops snapshot: identity, fair-share ledger
/// position, and progress — enough for the `hcmd_campaign_*` metric
/// families and the dashboard table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignOps {
    /// Registry name.
    pub name: String,
    /// Normalised fair-share weight.
    pub share: f64,
    /// Fair-share tie-break priority.
    pub priority: u32,
    /// Validated reference-CPU seconds delivered so far.
    pub delivered_ref_seconds: f64,
    /// `share · Σdelivered − delivered`: positive when underserved.
    pub deficit: f64,
    /// Picks that out-ranked a work-starved larger-deficit campaign.
    pub borrows: u64,
    /// Workunits in the catalog.
    pub workunits: usize,
    /// Workunits validated.
    pub workunits_done: usize,
    /// Owned workunits never yet issued.
    pub fresh_backlog: usize,
    /// Issued, unreported, unexpired replicas.
    pub outstanding_replicas: usize,
    /// Every workunit validated.
    pub complete: bool,
}

/// A cheap, self-contained copy of everything the ops endpoint renders,
/// taken under the server's state lock by [`GridState::ops_snapshot`].
/// Copy-on-scrape: the HTTP thread takes this snapshot in one short
/// critical section and renders outside it, so a slow scraper can never
/// stall the fetch/report hot path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpsSnapshot {
    /// Latest server-clock second any entry point has seen.
    pub last_now: f64,
    /// Workunit state counts (issued / in-flight / quorum-pending / done).
    pub wu: WuStateCounts,
    /// Per-receptor progression (the paper's Fig. 1, live).
    pub receptors: Vec<ReceptorProgress>,
    /// Core issue/reissue/validation accounting.
    pub stats: ServerStats,
    /// Wire-level counters.
    pub net_stats: NetStats,
    /// Total results received.
    pub results_received: u64,
    /// Useful results.
    pub results_useful: u64,
    /// Results received / useful results.
    pub redundancy_factor: f64,
    /// Reference CPU seconds of validated workunits (drives the virtual
    /// full-time processor figure: divide by `last_now`).
    pub completed_ref_seconds: f64,
    /// Issued, unreported, unexpired replicas.
    pub outstanding_replicas: usize,
    /// Workunits queued for another replica.
    pub reissue_queue_depth: usize,
    /// Incomplete workunits holding quorum candidates.
    pub quorum_candidate_workunits: usize,
    /// True once every workunit validated.
    pub campaign_complete: bool,
    /// Journal health; `None` when durability is off.
    pub journal: Option<JournalOps>,
    /// Per-agent ledger, sorted by agent id.
    pub agents: Vec<(u64, AgentLedger)>,
    /// Reference CPU seconds burned on results that were not useful
    /// (redundant surplus, rejects, late reports, spot recomputations).
    #[serde(default)]
    pub wasted_ref_seconds: f64,
    /// Trust band census; `None` when the trust policy is off.
    #[serde(default)]
    pub trust: Option<TrustSummary>,
    /// Per-agent trust score and band, sorted by agent id; empty when
    /// the trust policy is off.
    #[serde(default)]
    pub agents_trust: Vec<(u64, f64, TrustBand)>,
    /// Shard identity and ownership; `None` when unsharded.
    #[serde(default)]
    pub shard: Option<ShardOps>,
    /// Per-campaign rows, in registry slot order (one row for the
    /// implicit solo campaign). The top-level fields above describe
    /// slot 0 — the default campaign — for scrape continuity.
    #[serde(default)]
    pub campaigns: Vec<CampaignOps>,
    /// Largest |delivered fraction − share| across campaigns.
    #[serde(default)]
    pub campaign_share_error: f64,
    /// Fetches denied by the cross-campaign trust gate.
    #[serde(default)]
    pub cross_quarantine_denials: u64,
}

/// The live grid's server state (scheduling + validation + payloads),
/// with time as an explicit argument.
pub struct GridState {
    core: SchedulerCore,
    faults: ServerFaults,
    ranges: ValueRanges,
    /// This server's place in the shard topology ([`ShardSpec::solo`]
    /// when unsharded). Part of the journal header identity.
    shard: ShardSpec,
    /// Leases this shard granted: lease id → (lessee shard, workunits).
    /// Journaled (ownership moves are scheduling state); also drives
    /// re-grants when a restarted lessee reports it never adopted one.
    leases_granted: HashMap<u64, (u16, Vec<u32>)>,
    /// Leases adopted from peers: lease id → workunits. Journaled, and
    /// advertised back to each grantor so both books converge after a
    /// crash on either side.
    leases_held: HashMap<u64, Vec<u32>>,
    /// Outstanding (issued, unreported, unexpired) replicas → absolute
    /// deadline in seconds.
    outstanding: HashMap<u64, f64>,
    /// Replicas that have reported (wire-level dedup; the core panics on
    /// double reports).
    reported: std::collections::HashSet<u64>,
    /// Quorum candidates per incomplete workunit: payload fingerprint,
    /// the payload itself (kept so the *matched* copy becomes the
    /// accepted artifact), and the reporting agent (`u64::MAX` when the
    /// replica was never attributed) so quorum partners earn trust
    /// credit when their pair completes.
    candidates: HashMap<u32, Vec<(u64, DockingOutput, u64)>>,
    /// The validated output per workunit, in catalog order.
    accepted: Vec<Option<DockingOutput>>,
    /// Consecutive empty fetches per agent (drives backoff).
    misses: HashMap<u64, u32>,
    /// Which agent holds each issued replica — lets a report (which
    /// carries no agent id on the wire) be attributed back to the agent
    /// the replica was assigned to. Promoted into [`GridSnapshot`] with
    /// the trust ledger: trust credit flows through this map, so a
    /// restart must reconstruct it exactly.
    replica_agent: HashMap<u64, u64>,
    /// Per-agent accept/reject history driving the replication bands.
    /// Journaled (unlike the advisory `agents` ledger): trust decisions
    /// change scheduling, so they must survive `kill -9`.
    agent_trust: HashMap<u64, AgentTrust>,
    /// Trusted agents' accepted singles not yet independently
    /// confirmed, per suspect agent — the set a failed spot check
    /// retracts retroactively.
    unverified: HashMap<u64, Vec<u32>>,
    /// Spot checks awaiting an independent agent: (workunit, suspect).
    spot_queue: VecDeque<(u32, u64)>,
    /// Spot-check replicas in flight: replica → (workunit, suspect).
    spot_outstanding: HashMap<u64, (u32, u64)>,
    /// Per-agent assignment/report accounting for the ops endpoint.
    /// Advisory: rebuilt from `Fetch` records on journal replay but not
    /// part of [`GridSnapshot`], so it restarts empty after a
    /// restore-from-snapshot (the scheduler state it describes does
    /// not).
    agents: HashMap<u64, AgentLedger>,
    /// Wire-level counters.
    pub net_stats: NetStats,
    /// Latest server-clock second any entry point has seen — the resume
    /// offset a journaled restart continues the clock from.
    last_now: f64,
    /// Write-ahead journal, when durability is on. Lives inside the
    /// state (behind the server's state lock), so wal order is exactly
    /// the transition apply order.
    journal: Option<Journal>,
    tele: Tele,
}

/// One workunit's banked candidate list as the snapshot stores it:
/// `(fingerprint, payload, reporting agent)` per candidate.
type CandidateRows = Vec<(u64, DockingOutput, u64)>;

/// A complete, serializable copy of [`GridState`] — what the journal's
/// compacting snapshot persists. Maps are flattened to key-sorted pairs
/// so equal states snapshot to identical bytes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSnapshot {
    core: CoreSnapshot,
    outstanding: Vec<(u64, f64)>,
    reported: Vec<u64>,
    candidates: Vec<(u32, CandidateRows)>,
    accepted: Vec<Option<DockingOutput>>,
    misses: Vec<(u64, u32)>,
    net_stats: NetStats,
    last_now: f64,
    #[serde(default)]
    replica_agent: Vec<(u64, u64)>,
    #[serde(default)]
    agent_trust: Vec<(u64, AgentTrust)>,
    #[serde(default)]
    unverified: Vec<(u64, Vec<u32>)>,
    #[serde(default)]
    spot_queue: Vec<(u32, u64)>,
    #[serde(default)]
    spot_outstanding: Vec<(u64, (u32, u64))>,
    #[serde(default = "ShardSpec::solo")]
    shard: ShardSpec,
    #[serde(default)]
    leases_granted: Vec<(u64, (u16, Vec<u32>))>,
    #[serde(default)]
    leases_held: Vec<(u64, Vec<u32>)>,
}

impl GridState {
    /// Builds the state for one campaign (unsharded).
    pub fn new(campaign: &NetCampaign, config: ServerConfig, faults: ServerFaults) -> Self {
        Self::new_sharded(campaign, config, faults, ShardSpec::solo())
    }

    /// Builds the state for one shard of a campaign. The scheduler runs
    /// over the full catalog but owns only the workunits the shard map
    /// assigns to `shard` — keeping workunit indices, replica ids and
    /// launch order globally consistent across the topology.
    pub fn new_sharded(
        campaign: &NetCampaign,
        config: ServerConfig,
        faults: ServerFaults,
        shard: ShardSpec,
    ) -> Self {
        let core = if shard.shards > 1 {
            let owned = shard::ownership_map(campaign, shard);
            SchedulerCore::with_ownership(campaign.catalog(), config, owned)
        } else {
            SchedulerCore::new(campaign.catalog(), config)
        };
        Self {
            core,
            faults,
            ranges: ValueRanges::default(),
            shard,
            leases_granted: HashMap::new(),
            leases_held: HashMap::new(),
            outstanding: HashMap::new(),
            reported: std::collections::HashSet::new(),
            candidates: HashMap::new(),
            accepted: vec![None; campaign.len()],
            misses: HashMap::new(),
            replica_agent: HashMap::new(),
            agent_trust: HashMap::new(),
            unverified: HashMap::new(),
            spot_queue: VecDeque::new(),
            spot_outstanding: HashMap::new(),
            agents: HashMap::new(),
            net_stats: NetStats::default(),
            last_now: 0.0,
            journal: None,
            tele: Tele::new(),
        }
    }

    /// Read access to the shared scheduling core.
    pub fn core(&self) -> &SchedulerCore {
        &self.core
    }

    /// Attaches an open write-ahead journal; every subsequent
    /// [`Self::fetch`]/[`Self::report`]/[`Self::sweep`] transition is
    /// appended to it (and compacted when due).
    pub fn attach_journal(&mut self, journal: Journal) {
        self.journal = Some(journal);
    }

    /// Latest server-clock second any entry point has seen.
    pub fn last_now(&self) -> f64 {
        self.last_now
    }

    /// Captures the complete state for a compacting snapshot.
    pub fn snapshot(&self) -> GridSnapshot {
        fn sorted<V: Clone>(map: &HashMap<u64, V>) -> Vec<(u64, V)> {
            let mut v: Vec<(u64, V)> = map.iter().map(|(&k, v)| (k, v.clone())).collect();
            v.sort_by_key(|&(k, _)| k);
            v
        }
        let mut reported: Vec<u64> = self.reported.iter().copied().collect();
        reported.sort_unstable();
        let mut candidates: Vec<(u32, CandidateRows)> = self
            .candidates
            .iter()
            .map(|(&wu, v)| (wu, v.clone()))
            .collect();
        candidates.sort_by_key(|&(wu, _)| wu);
        GridSnapshot {
            core: self.core.snapshot(),
            outstanding: sorted(&self.outstanding),
            reported,
            candidates,
            accepted: self.accepted.clone(),
            misses: sorted(&self.misses),
            net_stats: self.net_stats,
            last_now: self.last_now,
            replica_agent: sorted(&self.replica_agent),
            agent_trust: sorted(&self.agent_trust),
            unverified: sorted(&self.unverified),
            spot_queue: self.spot_queue.iter().copied().collect(),
            spot_outstanding: sorted(&self.spot_outstanding),
            shard: self.shard,
            leases_granted: sorted(&self.leases_granted),
            leases_held: sorted(&self.leases_held),
        }
    }

    /// Rebuilds a state from a snapshot taken under the same campaign
    /// and configuration. Fails (with a reason) when the snapshot is
    /// internally inconsistent or belongs to a different campaign.
    pub fn restore(
        campaign: &NetCampaign,
        config: ServerConfig,
        faults: ServerFaults,
        snap: GridSnapshot,
    ) -> Result<Self, String> {
        let core = SchedulerCore::restore(campaign.catalog(), config, snap.core)?;
        if snap.shard.shards > 1 && !core.is_sharded() {
            return Err(format!(
                "snapshot names shard {}/{} but carries no ownership state",
                snap.shard.shard_id, snap.shard.shards
            ));
        }
        if snap.accepted.len() != campaign.len() {
            return Err(format!(
                "snapshot has {} accepted slots for a {}-workunit campaign",
                snap.accepted.len(),
                campaign.len()
            ));
        }
        let replicas = core.replica_count() as u64;
        if let Some(&(r, _)) = snap.outstanding.iter().find(|&&(r, _)| r >= replicas) {
            return Err(format!("outstanding replica {r} out of range"));
        }
        if let Some(&r) = snap.reported.iter().find(|&&r| r >= replicas) {
            return Err(format!("reported replica {r} out of range"));
        }
        Ok(Self {
            core,
            faults,
            ranges: ValueRanges::default(),
            shard: snap.shard,
            leases_granted: snap.leases_granted.into_iter().collect(),
            leases_held: snap.leases_held.into_iter().collect(),
            outstanding: snap.outstanding.into_iter().collect(),
            reported: snap.reported.into_iter().collect(),
            candidates: snap.candidates.into_iter().collect(),
            accepted: snap.accepted,
            misses: snap.misses.into_iter().collect(),
            replica_agent: snap.replica_agent.into_iter().collect(),
            agent_trust: snap.agent_trust.into_iter().collect(),
            unverified: snap.unverified.into_iter().collect(),
            spot_queue: snap.spot_queue.into(),
            spot_outstanding: snap.spot_outstanding.into_iter().collect(),
            agents: HashMap::new(),
            net_stats: snap.net_stats,
            last_now: snap.last_now,
            journal: None,
            tele: Tele::new(),
        })
    }

    /// Appends one transition to the journal (when attached), cutting a
    /// compacting snapshot when one is due. Durability failures are
    /// fatal by design: a server that can no longer journal must not
    /// keep mutating state it promised to persist.
    fn journal_append(&mut self, rec: &JournalRecord) {
        let Some(mut journal) = self.journal.take() else {
            return;
        };
        journal.append(rec).expect("journal append failed");
        if journal.snapshot_due() {
            let snap = self.snapshot();
            journal
                .write_snapshot(self.last_now, snap)
                .expect("journal snapshot failed");
        }
        self.journal = Some(journal);
    }

    /// Syncs any journal appends the `EveryN` fsync policy left
    /// pending. The server's event loop calls this as a timer event (on
    /// the sweep tick), bounding how long an acknowledged transition can
    /// sit in the page cache. Same failure policy as appends: fatal.
    pub fn flush_journal(&mut self) {
        if let Some(journal) = self.journal.as_mut() {
            journal.flush().expect("journal flush failed");
        }
    }

    /// Appends since the attached journal's last fsync (`None` when the
    /// state runs unjournaled) — the `every=N` batch phase that must
    /// survive restart.
    pub fn journal_fsync_phase(&self) -> Option<u64> {
        self.journal.as_ref().map(|j| j.fsync_phase())
    }

    /// The core's cumulative issue/validation statistics.
    pub fn server_stats(&self) -> ServerStats {
        self.core.stats
    }

    /// True once every workunit has validated *and* no spot check is
    /// queued or in flight — a campaign does not finish with audits of
    /// its single-replica results unresolved. (Both sets are empty when
    /// trust is off, so this is the core's own gate then.)
    pub fn is_campaign_complete(&self) -> bool {
        self.core.is_campaign_complete()
            && self.spot_queue.is_empty()
            && self.spot_outstanding.is_empty()
    }

    /// Donated reference CPU seconds spent on results that never became
    /// the effective copy (quorum partners, errors, late copies, spot
    /// checks, retracted singles).
    pub fn wasted_ref_seconds(&self) -> f64 {
        self.core.wasted_ref_seconds()
    }

    /// Band counts and spot-check totals for end-of-run reporting;
    /// `None` when trust is off. Bands are judged at the latest server
    /// clock, so an agent still serving quarantine counts as
    /// quarantined.
    pub fn trust_summary(&self) -> Option<TrustSummary> {
        let cfg = self.faults.trust;
        if !cfg.enabled {
            return None;
        }
        let mut summary = TrustSummary::default();
        for trust in self.agent_trust.values() {
            match trust.band(self.last_now, &cfg) {
                TrustBand::Trusted => summary.trusted += 1,
                TrustBand::Probation => summary.probation += 1,
                TrustBand::Untrusted => summary.untrusted += 1,
                TrustBand::Quarantined => summary.quarantined += 1,
            }
            if trust.quarantine_count > 0 {
                summary.ever_quarantined += 1;
            }
        }
        summary.spot_checks_passed = self.net_stats.spot_checks_passed;
        summary.spot_checks_failed = self.net_stats.spot_checks_failed;
        Some(summary)
    }

    /// The trust ledger of one agent, when trust is on and the agent
    /// has history.
    pub fn agent_trust(&self, agent: u64) -> Option<AgentTrust> {
        self.agent_trust.get(&agent).copied()
    }

    /// The trust policy this state runs under.
    pub fn trust_config(&self) -> crate::trust::TrustConfig {
        self.faults.trust
    }

    /// How many valid results `workunit` still demands at `now` — its
    /// issue-time trust override if one was fixed, the era's policy
    /// otherwise. Exposed for the parity property tests.
    pub fn replication_needed(&self, now: SimTime, workunit: u32) -> u16 {
        self.core.replication_needed(now, workunit)
    }

    /// The full trust ledger, sorted by agent id; empty when trust is
    /// off (end-of-run reporting and the restart regression tests).
    pub fn agent_trust_table(&self) -> Vec<(u64, AgentTrust)> {
        let mut v: Vec<(u64, AgentTrust)> =
            self.agent_trust.iter().map(|(&a, &t)| (a, t)).collect();
        v.sort_by_key(|&(a, _)| a);
        v
    }

    /// The validated outputs in catalog order; `None` until
    /// [`Self::is_campaign_complete`].
    pub fn accepted_outputs(&self) -> Option<Vec<DockingOutput>> {
        if !self.is_campaign_complete() {
            return None;
        }
        self.accepted.iter().cloned().collect::<Option<Vec<_>>>()
    }

    /// The validated outputs this shard holds, in catalog order — the
    /// partial artifact a sharded `--out` writes. `Some` exactly at the
    /// workunits this shard validated; [`crate::shard::merge_artifacts`]
    /// stitches the shards' parts into the single-server result.
    pub fn partial_outputs(&self) -> Vec<Option<DockingOutput>> {
        self.accepted.clone()
    }

    /// This server's place in the shard topology.
    pub fn shard(&self) -> ShardSpec {
        self.shard
    }

    /// Issued, unreported, unexpired replicas (gossiped to peers: a
    /// shard with no backlog *and* nothing outstanding is fully drained).
    pub fn outstanding_len(&self) -> usize {
        self.outstanding.len()
    }

    /// Counts one work request answered with a `Redirect`. Advisory
    /// (like the per-agent ledger): not journaled, so it restarts from
    /// the snapshot value.
    pub fn note_redirect(&mut self) {
        self.net_stats.shard_redirects += 1;
    }

    /// Grants a lease of up to `max` never-issued workunits to a hungry
    /// peer. Returns `None` when nothing is leaseable. The lease id is
    /// derived from this shard's id and its journaled grant count, so
    /// replay regenerates the same ids in the same order.
    pub fn grant_lease(
        &mut self,
        now: SimTime,
        to_shard: u16,
        max: usize,
    ) -> Option<(u64, Vec<u32>)> {
        let wus = self.core.lease_candidates(max);
        if wus.is_empty() {
            return None;
        }
        let lease = shard::lease_id(self.shard.shard_id, self.leases_granted.len() as u64);
        self.apply_lease_out(now, lease, to_shard, &wus);
        Some((lease, wus))
    }

    /// Applies (and journals) one outbound lease: the workunits stop
    /// being owned here. Idempotent — a lease id already granted is a
    /// no-op returning 0, so duplicate gossip frames cannot double-move
    /// ownership. Returns the workunits whose ownership moved.
    pub fn apply_lease_out(
        &mut self,
        now: SimTime,
        lease: u64,
        to_shard: u16,
        wus: &[u32],
    ) -> usize {
        if self.leases_granted.contains_key(&lease) {
            return 0;
        }
        self.last_now = self.last_now.max(now.seconds());
        let moved = self.core.lease_out(wus);
        self.leases_granted.insert(lease, (to_shard, wus.to_vec()));
        self.net_stats.shard_leases_out += 1;
        self.net_stats.shard_wus_leased_out += moved as u64;
        self.journal_append(&JournalRecord::LeaseOut {
            now_s: now.seconds(),
            lease,
            to_shard,
            wus: wus.to_vec(),
        });
        moved
    }

    /// Adopts (and journals) one inbound lease: the workunits become
    /// owned here and join the fresh queue. Idempotent — a lease id
    /// already held is a no-op returning 0, so a re-sent `LeaseGrant`
    /// (duplicate gossip, or a grantor re-offering after a crash)
    /// cannot double-issue the range. Returns the workunits adopted.
    pub fn adopt_lease(&mut self, now: SimTime, lease: u64, wus: &[u32]) -> usize {
        if self.leases_held.contains_key(&lease) {
            return 0;
        }
        self.last_now = self.last_now.max(now.seconds());
        let moved = self.core.lease_in(wus);
        self.leases_held.insert(lease, wus.to_vec());
        self.net_stats.shard_leases_in += 1;
        self.net_stats.shard_wus_leased_in += moved as u64;
        self.journal_append(&JournalRecord::LeaseIn {
            now_s: now.seconds(),
            lease,
            wus: wus.to_vec(),
        });
        moved
    }

    /// Lease ids this shard adopted from `grantor` — advertised back in
    /// every `ShardStatus` so a restarted grantor can re-send any grant
    /// the advertisement is missing (its journal says granted, ours
    /// never said adopted: the grant frame died with the connection).
    pub fn leases_held_from(&self, grantor: u16) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .leases_held
            .keys()
            .copied()
            .filter(|&l| shard::lease_grantor(l) == grantor)
            .collect();
        v.sort_unstable();
        v
    }

    /// Leases this shard granted to `lessee` — compared against the
    /// lessee's advertised holdings to find grants that never landed.
    pub fn leases_granted_to(&self, lessee: u16) -> Vec<(u64, Vec<u32>)> {
        let mut v: Vec<(u64, Vec<u32>)> = self
            .leases_granted
            .iter()
            .filter(|(_, (to, _))| *to == lessee)
            .map(|(&l, (_, wus))| (l, wus.clone()))
            .collect();
        v.sort_by_key(|&(l, _)| l);
        v
    }

    /// Answers a work request from `agent` at time `now`.
    pub fn fetch(&mut self, now: SimTime, agent: u64) -> WorkReply {
        self.last_now = self.last_now.max(now.seconds());
        let ledger = self.agents.entry(agent).or_default();
        ledger.last_seen_s = ledger.last_seen_s.max(now.seconds());
        let reply = match self.next_assignment(now, agent) {
            Ok(assignment) => {
                self.misses.remove(&agent);
                self.agents.entry(agent).or_default().assignments += 1;
                self.replica_agent.insert(assignment.replica.0, agent);
                self.outstanding.insert(
                    assignment.replica.0,
                    now.seconds() + self.core.deadline_seconds(),
                );
                telemetry::emit(Some(now.seconds()), || Event::WorkunitDispatched {
                    workunit: u64::from(assignment.workunit),
                    host: agent,
                });
                WorkReply::Assigned(assignment)
            }
            Err(quarantined_ms) => {
                let retry_after_ms = match quarantined_ms {
                    // Quarantine: the agent gets no work until its
                    // re-admission timer runs out, regardless of how
                    // often it asks.
                    Some(ms) => {
                        self.net_stats.trust_denied_fetches += 1;
                        ms.max(self.faults.backoff_base_ms.max(1))
                    }
                    None => {
                        let miss = self.misses.entry(agent).or_insert(0);
                        let ms = self.faults.backoff_ms(agent, *miss);
                        *miss = miss.saturating_add(1);
                        ms
                    }
                };
                self.net_stats.backoffs_sent += 1;
                self.tele.backoffs.inc();
                WorkReply::Backoff {
                    retry_after_ms,
                    campaign_complete: self.is_campaign_complete(),
                }
            }
        };
        if self.journal.is_some() {
            let assigned = match &reply {
                WorkReply::Assigned(a) => Some((a.replica.0, a.workunit)),
                WorkReply::Backoff { .. } => None,
            };
            self.journal_append(&JournalRecord::Fetch {
                now_s: now.seconds(),
                agent,
                assigned,
            });
        }
        reply
    }

    /// Picks the next replica for `agent`, or `Err(quarantine)` when
    /// nothing is issuable: `Err(Some(ms))` for a quarantined agent
    /// (remaining quarantine in ms), `Err(None)` for a plain empty
    /// queue.
    ///
    /// With trust on, the order is: quarantine gate, then pending spot
    /// checks (served to any agent but the suspect — an audit computed
    /// by its own subject proves nothing), then regular work at the
    /// agent's band-appropriate replication level. Every decision is a
    /// pure function of journaled state, so replay reproduces it.
    fn next_assignment(
        &mut self,
        now: SimTime,
        agent: u64,
    ) -> Result<ReplicaAssignment, Option<u64>> {
        let trust = self.faults.trust;
        if !trust.enabled {
            return self.core.fetch_work(now).ok_or(None);
        }
        let entry = self.agent_trust.entry(agent).or_default();
        let quarantine_s = entry.quarantine_remaining_s(now.seconds());
        if quarantine_s > 0.0 {
            return Err(Some((quarantine_s * 1_000.0).ceil() as u64));
        }
        loop {
            // Serve the oldest spot check whose suspect is someone
            // else. Once the core has validated everything, self-audits
            // are allowed so a lone surviving agent cannot deadlock the
            // drain (a recomputation by the same agent still catches
            // nondeterministic corruption; a byte-stable liar is no
            // worse off than an unsampled single).
            let pos = match self.spot_queue.iter().position(|&(_, s)| s != agent) {
                Some(p) => Some(p),
                None if self.core.is_campaign_complete() && !self.spot_queue.is_empty() => Some(0),
                None => None,
            };
            let Some(pos) = pos else { break };
            let (wu, suspect) = self.spot_queue.remove(pos).expect("position in range");
            if self.accepted[wu as usize].is_none() {
                // Retracted while queued (its suspect cratered): the
                // workunit is back under quorum; the audit is moot.
                continue;
            }
            let assignment = self.core.issue_spot_check(wu);
            self.spot_outstanding
                .insert(assignment.replica.0, (wu, suspect));
            return Ok(assignment);
        }
        let replication = match self
            .agent_trust
            .entry(agent)
            .or_default()
            .band(now.seconds(), &trust)
        {
            TrustBand::Trusted => Some(ReplicationOverride::Single),
            TrustBand::Untrusted => Some(ReplicationOverride::Quorum),
            TrustBand::Probation => None,
            // Gated above; unreachable in practice, safe if not.
            TrustBand::Quarantined => return Err(None),
        };
        self.core.fetch_work_with(now, replication).ok_or(None)
    }

    /// Expires outstanding replicas whose deadline passed; each expiry
    /// queues a timeout reissue in the core (if still needed). Returns
    /// the number of expiries.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        self.last_now = self.last_now.max(now.seconds());
        let mut expired: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, &deadline)| now.seconds() >= deadline)
            .map(|(&r, _)| r)
            .collect();
        // Replica-id order, not map order: when one sweep expires
        // several replicas the reissue queue must come out the same on
        // the live server and on journal replay.
        expired.sort_unstable();
        for r in &expired {
            self.outstanding.remove(r);
            self.net_stats.deadline_expiries += 1;
            self.tele.expiries.inc();
            if let Some((wu, suspect)) = self.spot_outstanding.remove(r) {
                // An expired spot check goes back in the audit queue —
                // the workunit stays unconfirmed until somebody
                // actually recomputes it.
                self.spot_queue.push_back((wu, suspect));
                continue;
            }
            self.core.handle_timeout(ReplicaId(*r));
        }
        // No-op sweeps change nothing and run every few tens of ms, so
        // only expiring sweeps are journaled.
        if !expired.is_empty() {
            self.journal_append(&JournalRecord::Sweep {
                now_s: now.seconds(),
                expired: expired.len() as u64,
            });
        }
        expired.len()
    }

    /// Judges and books one reported result.
    ///
    /// Validation is two-layered, matching §5.2: the value-range checks
    /// always run on arrival (they became the *only* check after the
    /// day-110 switch), and under [`ValidationPolicy::QuorumCompare`]
    /// a result must additionally agree byte-for-byte with a partner
    /// replica before the workunit validates.
    pub fn report(
        &mut self,
        now: SimTime,
        campaign: &NetCampaign,
        replica: ReplicaId,
        workunit: u32,
        output: DockingOutput,
    ) -> ResultDisposition {
        self.last_now = self.last_now.max(now.seconds());
        if self.journal.is_none() {
            let d = self.report_inner(now, campaign, replica, workunit, output);
            self.note_report(replica, d.verdict, now);
            return d;
        }
        // The journal keeps the payload exactly when it became server
        // state (a quorum candidate or the accepted artifact); replay
        // synthesizes rejected/duplicate payloads, whose bytes the live
        // server discarded on arrival anyway.
        let d = self.report_inner(now, campaign, replica, workunit, output.clone());
        self.note_report(replica, d.verdict, now);
        let payload = match d.verdict {
            Verdict::BoundsRejected
            | Verdict::Duplicate
            | Verdict::SpotMismatch
            | Verdict::SpotVoid => None,
            _ => Some(output),
        };
        self.journal_append(&JournalRecord::Report {
            now_s: now.seconds(),
            replica: replica.0,
            workunit,
            verdict: d.verdict,
            output: payload,
        });
        d
    }

    /// Books one report against the agent the replica was assigned to.
    /// Forged replica ids never got an assignment, so they attribute to
    /// nobody.
    fn note_report(&mut self, replica: ReplicaId, verdict: Verdict, now: SimTime) {
        let Some(&agent) = self.replica_agent.get(&replica.0) else {
            return;
        };
        let ledger = self.agents.entry(agent).or_default();
        ledger.last_seen_s = ledger.last_seen_s.max(now.seconds());
        ledger.reports += 1;
        match verdict {
            Verdict::Accepted | Verdict::SpotConfirmed => ledger.accepted += 1,
            Verdict::QuorumRejected | Verdict::BoundsRejected => ledger.rejected += 1,
            Verdict::QuorumPending
            | Verdict::Duplicate
            | Verdict::Late
            | Verdict::SpotMismatch
            | Verdict::SpotVoid => {}
        }
        // Trust scoring for the *reporter*. A confirmed spot check is a
        // byte-correct recomputation, so it earns the auditor credit; a
        // mismatch proves only disagreement (the cratered party is the
        // suspect, handled in the spot path), so the auditor's score is
        // untouched.
        match verdict {
            Verdict::Accepted | Verdict::SpotConfirmed => self.trust_accept(agent),
            Verdict::QuorumRejected | Verdict::BoundsRejected => self.trust_reject(agent, now),
            Verdict::QuorumPending
            | Verdict::Duplicate
            | Verdict::Late
            | Verdict::SpotMismatch
            | Verdict::SpotVoid => {}
        }
    }

    /// Credits one validated result to `agent`'s trust window.
    fn trust_accept(&mut self, agent: u64) {
        if !self.faults.trust.enabled || agent == u64::MAX {
            return;
        }
        self.agent_trust.entry(agent).or_default().record_accept();
    }

    /// Debits one rejected result; a long enough run of consecutive
    /// rejections starts quarantine.
    fn trust_reject(&mut self, agent: u64, now: SimTime) {
        let cfg = self.faults.trust;
        if !cfg.enabled || agent == u64::MAX {
            return;
        }
        let trust = self.agent_trust.entry(agent).or_default();
        if trust.record_reject(&cfg) {
            trust.quarantine(now.seconds(), &cfg);
        }
    }

    /// A spot check caught `suspect` lying (or at least disagreeing):
    /// trust craters to zero with immediate quarantine, and every one
    /// of the suspect's accepted-but-unconfirmed singles is retracted
    /// and re-replicated under forced quorum.
    fn crater_agent(&mut self, suspect: u64, now: SimTime) {
        let cfg = self.faults.trust;
        if suspect != u64::MAX {
            self.agent_trust
                .entry(suspect)
                .or_default()
                .crater(now.seconds(), &cfg);
        }
        let Some(wus) = self.unverified.remove(&suspect) else {
            return;
        };
        for wu in wus {
            if self.core.invalidate_workunit(wu) {
                self.net_stats.workunits_invalidated += 1;
                self.accepted[wu as usize] = None;
                self.candidates.remove(&wu);
                // Any queued audit of a retracted workunit is dropped
                // lazily at fetch time (its accepted copy is gone).
            }
        }
    }

    /// Takes the copy-on-scrape snapshot the ops endpoint renders; see
    /// [`OpsSnapshot`]. Called under the server's state lock — every
    /// field is a counter, small struct, or short vec, so the critical
    /// section stays far below one fetch/report cycle.
    pub fn ops_snapshot(&self) -> OpsSnapshot {
        let mut agents: Vec<(u64, AgentLedger)> =
            self.agents.iter().map(|(&a, &l)| (a, l)).collect();
        agents.sort_by_key(|&(a, _)| a);
        let agents_trust = if self.faults.trust.enabled {
            let cfg = self.faults.trust;
            let mut v: Vec<(u64, f64, TrustBand)> = self
                .agent_trust
                .iter()
                .map(|(&a, t)| (a, t.score(), t.band(self.last_now, &cfg)))
                .collect();
            v.sort_by_key(|&(a, _, _)| a);
            v
        } else {
            Vec::new()
        };
        OpsSnapshot {
            last_now: self.last_now,
            wu: self.core.wu_state_counts(),
            receptors: self.core.receptor_progress(),
            stats: self.core.stats,
            net_stats: self.net_stats,
            results_received: self.core.results_received,
            results_useful: self.core.results_useful,
            redundancy_factor: self.core.redundancy_factor(),
            completed_ref_seconds: self.core.completed_ref_seconds(),
            outstanding_replicas: self.outstanding.len(),
            reissue_queue_depth: self.core.reissue_queue_depth(),
            quorum_candidate_workunits: self.candidates.len(),
            campaign_complete: self.is_campaign_complete(),
            journal: self.journal.as_ref().map(|j| JournalOps {
                epoch: j.epoch(),
                wal_appends_since_snapshot: j.appends_since_snapshot(),
            }),
            agents,
            wasted_ref_seconds: self.core.wasted_ref_seconds(),
            trust: self.trust_summary(),
            agents_trust,
            shard: (self.shard.shards > 1).then(|| ShardOps {
                shard_id: self.shard.shard_id,
                shards: self.shard.shards,
                owned_workunits: self.core.owned_count() as u64,
                fresh_backlog: self.core.fresh_backlog() as u64,
            }),
            // Filled by the registry, which owns the fair-share ledger.
            campaigns: Vec::new(),
            campaign_share_error: 0.0,
            cross_quarantine_denials: 0,
        }
    }

    fn report_inner(
        &mut self,
        now: SimTime,
        campaign: &NetCampaign,
        replica: ReplicaId,
        workunit: u32,
        output: DockingOutput,
    ) -> ResultDisposition {
        // Wire-level sanity: a retransmitted or forged report must not
        // reach the core (it panics on double reports by design — the
        // simulator can never produce one).
        if self.reported.contains(&replica.0)
            || replica.0 >= self.core.replica_count() as u64
            || self.core.replica_workunit(replica) != workunit
        {
            self.net_stats.duplicates_dropped += 1;
            self.tele.duplicates.inc();
            return ResultDisposition {
                verdict: Verdict::Duplicate,
                completed_workunit: false,
                campaign_complete: self.is_campaign_complete(),
            };
        }
        self.reported.insert(replica.0);
        self.outstanding.remove(&replica.0);

        // Spot-check replicas short-circuit normal validation: the
        // workunit is already complete, and the only question is
        // whether this independent recomputation byte-matches the
        // accepted single it audits.
        if let Some((wu, suspect)) = self.spot_outstanding.remove(&replica.0) {
            debug_assert_eq!(wu, workunit, "spot replica reported for the wrong workunit");
            self.core.note_spot_report(replica);
            let Some(accepted) = self.accepted[wu as usize].as_ref() else {
                // Retracted while the audit was in flight.
                return ResultDisposition {
                    verdict: Verdict::SpotVoid,
                    completed_workunit: false,
                    campaign_complete: self.is_campaign_complete(),
                };
            };
            let fp_accepted = fnv1a64(
                serde_json::to_string(accepted)
                    .expect("DockingOutput serializes")
                    .as_bytes(),
            );
            let fp = fnv1a64(
                serde_json::to_string(&output)
                    .expect("DockingOutput serializes")
                    .as_bytes(),
            );
            if fp == fp_accepted {
                self.net_stats.spot_checks_passed += 1;
                // The audited single is now independently confirmed; a
                // later crater of the suspect no longer retracts it.
                if let Some(wus) = self.unverified.get_mut(&suspect) {
                    wus.retain(|&w| w != wu);
                    if wus.is_empty() {
                        self.unverified.remove(&suspect);
                    }
                }
                return ResultDisposition {
                    verdict: Verdict::SpotConfirmed,
                    completed_workunit: false,
                    campaign_complete: self.is_campaign_complete(),
                };
            }
            self.net_stats.spot_checks_failed += 1;
            telemetry::emit(Some(now.seconds()), || Event::QuorumRejected {
                workunit: u64::from(wu),
            });
            self.crater_agent(suspect, now);
            return ResultDisposition {
                verdict: Verdict::SpotMismatch,
                completed_workunit: false,
                campaign_complete: self.is_campaign_complete(),
            };
        }

        // Layer 1: the §5.2 bounds checks (the simulator's `error` flag
        // made concrete).
        let file = campaign.result_file(workunit, &output);
        let bounds_ok = check_file(&file, &self.ranges).is_empty();
        if !bounds_ok {
            self.net_stats.bounds_rejected += 1;
            self.tele.bounds_rejected.inc();
            let outcome = self.core.report_result(now, replica, true);
            debug_assert!(outcome.erroneous);
            return ResultDisposition {
                verdict: Verdict::BoundsRejected,
                completed_workunit: false,
                campaign_complete: self.is_campaign_complete(),
            };
        }

        // Accepted payloads are recorded exactly when the core validates
        // a workunit, so this is "has the core completed it already".
        let was_complete = self.accepted[workunit as usize].is_some();

        // Layer 2: byte-level quorum agreement, whenever this workunit
        // needs more than one valid result — by the era's validation
        // policy or by a trust override fixed at issue time.
        let needed = self.core.replication_needed(now, workunit);
        if needed >= 2 && !was_complete {
            let fp = fnv1a64(
                serde_json::to_string(&output)
                    .expect("DockingOutput serializes")
                    .as_bytes(),
            );
            let agent = self
                .replica_agent
                .get(&replica.0)
                .copied()
                .unwrap_or(u64::MAX);
            let cands = self.candidates.entry(workunit).or_default();
            if !cands.is_empty() && !cands.iter().any(|(h, _, _)| *h == fp) {
                // Disagrees with every candidate: reject — but *keep* it
                // as a candidate. If the first result was the corrupted
                // one, an honest pair must still be able to meet and
                // validate; with majority-free pairwise matching the
                // corrupted minority loses because corruption is random
                // (two corrupted payloads never match byte-for-byte).
                cands.push((fp, output, agent));
                self.net_stats.quorum_rejected += 1;
                self.tele.quorum_rejected.inc();
                telemetry::emit(Some(now.seconds()), || Event::QuorumRejected {
                    workunit: u64::from(workunit),
                });
                let outcome = self.core.report_result(now, replica, true);
                debug_assert!(outcome.erroneous);
                return ResultDisposition {
                    verdict: Verdict::QuorumRejected,
                    completed_workunit: false,
                    campaign_complete: self.is_campaign_complete(),
                };
            }
            let matched = !cands.is_empty();
            cands.push((fp, output.clone(), agent));
            let outcome = self.core.report_result(now, replica, false);
            if outcome.completed_workunit {
                debug_assert!(matched, "core quorum met before a byte-level match");
                // The pending partners whose bytes won the quorum earn
                // trust credit too — without this, agents whose results
                // mostly land first would never accumulate accepts in
                // the quorum era. (The completing reporter is the last
                // candidate; its credit flows through the verdict.)
                let partners: Vec<u64> = cands[..cands.len() - 1]
                    .iter()
                    .filter(|(h, _, _)| *h == fp)
                    .map(|(_, _, a)| *a)
                    .collect();
                self.accepted[workunit as usize] = Some(output);
                self.candidates.remove(&workunit);
                self.tele.accepted.inc();
                for partner in partners {
                    self.trust_accept(partner);
                }
                return ResultDisposition {
                    verdict: Verdict::Accepted,
                    completed_workunit: true,
                    campaign_complete: self.is_campaign_complete(),
                };
            }
            // Not yet completed: either the first candidate of the pair,
            // or a match whose quorum the core has not closed (only
            // possible with >2 live replicas of one workunit).
            return ResultDisposition {
                verdict: Verdict::QuorumPending,
                completed_workunit: false,
                campaign_complete: self.is_campaign_complete(),
            };
        }

        // Single-replica validation (bounds-check era, a trusted
        // agent's single, or a surplus copy of a validated workunit).
        let outcome = self.core.report_result(now, replica, false);
        if outcome.completed_workunit {
            self.accepted[workunit as usize] = Some(output);
            self.candidates.remove(&workunit);
            self.tele.accepted.inc();
            // A single accepted under trust is provisional until
            // audited; a seeded deterministic draw decides whether this
            // one gets an independent recomputation.
            let trust = self.faults.trust;
            if trust.enabled {
                if let Some(&agent) = self.replica_agent.get(&replica.0) {
                    self.unverified.entry(agent).or_default().push(workunit);
                    if spot_selected(trust.spot_seed, workunit, trust.spot_check_rate) {
                        self.spot_queue.push_back((workunit, agent));
                    }
                }
            }
            ResultDisposition {
                verdict: Verdict::Accepted,
                completed_workunit: true,
                campaign_complete: self.is_campaign_complete(),
            }
        } else {
            ResultDisposition {
                verdict: Verdict::Late,
                completed_workunit: false,
                campaign_complete: self.is_campaign_complete(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::CampaignParams;

    fn setup() -> (NetCampaign, GridState) {
        let campaign = NetCampaign::build(CampaignParams::tiny());
        let config = ServerConfig {
            deadline_seconds: 5.0,
            ..ServerConfig::default()
        };
        let state = GridState::new(&campaign, config, ServerFaults::default());
        (campaign, state)
    }

    fn t(s: f64) -> SimTime {
        SimTime::new(s)
    }

    #[test]
    fn honest_quorum_pair_validates_with_the_matched_payload() {
        let (campaign, mut state) = setup();
        let a = match state.fetch(t(0.0), 1) {
            WorkReply::Assigned(a) => a,
            other => panic!("{other:?}"),
        };
        let b = match state.fetch(t(0.0), 2) {
            WorkReply::Assigned(b) => b,
            other => panic!("{other:?}"),
        };
        assert_eq!(a.workunit, b.workunit, "quorum sibling issued first");
        let out = campaign.compute(campaign.spec(a.workunit));
        let d1 = state.report(t(1.0), &campaign, a.replica, a.workunit, out.clone());
        assert_eq!(d1.verdict, Verdict::QuorumPending);
        let d2 = state.report(t(2.0), &campaign, b.replica, b.workunit, out.clone());
        assert_eq!(d2.verdict, Verdict::Accepted);
        assert!(d2.completed_workunit);
    }

    #[test]
    fn corrupted_first_candidate_cannot_poison_the_workunit() {
        let (campaign, mut state) = setup();
        let a = match state.fetch(t(0.0), 1) {
            WorkReply::Assigned(a) => a,
            other => panic!("{other:?}"),
        };
        let b = match state.fetch(t(0.0), 2) {
            WorkReply::Assigned(b) => b,
            other => panic!("{other:?}"),
        };
        let honest = campaign.compute(campaign.spec(a.workunit));
        let mut corrupt = honest.clone();
        corrupt.rows[0].eelec += 1e-9;
        // Corrupted result lands first and becomes the first candidate.
        let d1 = state.report(t(1.0), &campaign, a.replica, a.workunit, corrupt);
        assert_eq!(d1.verdict, Verdict::QuorumPending);
        // Honest result disagrees with it: quorum-rejected, error reissue.
        let d2 = state.report(t(2.0), &campaign, b.replica, b.workunit, honest.clone());
        assert_eq!(d2.verdict, Verdict::QuorumRejected);
        assert_eq!(state.net_stats.quorum_rejected, 1);
        // The reissued replicas eventually deliver two honest copies.
        let c = match state.fetch(t(3.0), 3) {
            WorkReply::Assigned(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(c.workunit, a.workunit, "error reissue comes first");
        let d3 = state.report(t(4.0), &campaign, c.replica, c.workunit, honest.clone());
        assert_eq!(d3.verdict, Verdict::Accepted, "honest pair met");
        assert!(d3.completed_workunit);
        assert_eq!(
            state.accepted[a.workunit as usize].as_ref(),
            Some(&honest),
            "the honest payload is the accepted artifact"
        );
    }

    #[test]
    fn out_of_bounds_payload_is_rejected_and_reissued() {
        let (campaign, mut state) = setup();
        let a = match state.fetch(t(0.0), 1) {
            WorkReply::Assigned(a) => a,
            other => panic!("{other:?}"),
        };
        let mut bad = campaign.compute(campaign.spec(a.workunit));
        bad.rows[0].elj = f64::INFINITY;
        let d = state.report(t(1.0), &campaign, a.replica, a.workunit, bad);
        assert_eq!(d.verdict, Verdict::BoundsRejected);
        assert_eq!(state.net_stats.bounds_rejected, 1);
        assert_eq!(state.server_stats().errors_received, 1);
    }

    #[test]
    fn duplicate_report_is_dropped_before_the_core() {
        let (campaign, mut state) = setup();
        let a = match state.fetch(t(0.0), 1) {
            WorkReply::Assigned(a) => a,
            other => panic!("{other:?}"),
        };
        let out = campaign.compute(campaign.spec(a.workunit));
        state.report(t(1.0), &campaign, a.replica, a.workunit, out.clone());
        let d = state.report(t(1.5), &campaign, a.replica, a.workunit, out);
        assert_eq!(d.verdict, Verdict::Duplicate);
        assert_eq!(state.net_stats.duplicates_dropped, 1);
    }

    #[test]
    fn sweep_expires_deadlines_and_queues_timeout_reissues() {
        let (_campaign, mut state) = setup();
        let a = match state.fetch(t(0.0), 1) {
            WorkReply::Assigned(a) => a,
            other => panic!("{other:?}"),
        };
        assert_eq!(state.sweep(t(1.0)), 0, "before the deadline");
        assert_eq!(state.sweep(t(10.0)), 1, "past the 5 s deadline");
        assert_eq!(state.net_stats.deadline_expiries, 1);
        assert_eq!(state.server_stats().timeout_reissues, 0);
        // The reissue surfaces on the next fetch, same workunit.
        let b = match state.fetch(t(10.0), 2) {
            WorkReply::Assigned(b) => b,
            other => panic!("{other:?}"),
        };
        assert_eq!(b.workunit, a.workunit);
    }

    #[test]
    fn empty_queue_backs_off_exponentially_per_agent() {
        let (campaign, mut state) = setup();
        // Drain the whole queue.
        let mut assignments = Vec::new();
        while let WorkReply::Assigned(a) = state.fetch(t(0.0), 1) {
            assignments.push(a);
        }
        assert!(assignments.len() >= 2 * campaign.len());
        let first = match state.fetch(t(0.0), 9) {
            WorkReply::Backoff { retry_after_ms, .. } => retry_after_ms,
            other => panic!("{other:?}"),
        };
        let later = (0..4)
            .map(|_| match state.fetch(t(0.0), 9) {
                WorkReply::Backoff { retry_after_ms, .. } => retry_after_ms,
                other => panic!("{other:?}"),
            })
            .last()
            .unwrap();
        assert!(later > first, "backoff must grow: {first} → {later}");
    }

    #[test]
    fn stalled_result_after_completion_is_counted_redundant() {
        let (campaign, mut state) = setup();
        let a = match state.fetch(t(0.0), 1) {
            WorkReply::Assigned(a) => a,
            other => panic!("{other:?}"),
        };
        let b = match state.fetch(t(0.0), 2) {
            WorkReply::Assigned(b) => b,
            other => panic!("{other:?}"),
        };
        assert_eq!(a.workunit, b.workunit);
        let out = campaign.compute(campaign.spec(a.workunit));
        // One half of the pair reports; the other stalls past its
        // deadline, so the sweep reissues it.
        state.report(t(1.0), &campaign, a.replica, a.workunit, out.clone());
        assert_eq!(state.sweep(t(10.0)), 1, "only b is still outstanding");
        let c = match state.fetch(t(10.0), 3) {
            WorkReply::Assigned(c) => c,
            other => panic!("{other:?}"),
        };
        assert_eq!(c.workunit, a.workunit, "timeout reissue of the pair");
        let d = state.report(t(11.0), &campaign, c.replica, c.workunit, out.clone());
        assert_eq!(d.verdict, Verdict::Accepted);
        // The stalled replica finally reports: valid, but redundant.
        let late = state.report(t(12.0), &campaign, b.replica, b.workunit, out);
        assert_eq!(late.verdict, Verdict::Late);
        assert_eq!(state.server_stats().late_results, 1);
    }

    fn setup_trust(spot_check_rate: f64) -> (NetCampaign, GridState) {
        let campaign = NetCampaign::build(CampaignParams::tiny());
        let config = ServerConfig {
            deadline_seconds: 5.0,
            ..ServerConfig::default()
        };
        let faults = ServerFaults {
            trust: crate::trust::TrustConfig {
                spot_check_rate,
                ..crate::trust::TrustConfig::on()
            },
            ..ServerFaults::default()
        };
        let state = GridState::new(&campaign, config, faults);
        (campaign, state)
    }

    fn assigned(state: &mut GridState, now: SimTime, agent: u64) -> ReplicaAssignment {
        match state.fetch(now, agent) {
            WorkReply::Assigned(a) => a,
            other => panic!("agent {agent} expected work, got {other:?}"),
        }
    }

    /// Completes `n` honest quorum pairs between two agents, crediting
    /// both ledgers with `n` accepts. Returns the last time used.
    fn earn_trust(
        campaign: &NetCampaign,
        state: &mut GridState,
        agents: (u64, u64),
        n: u64,
        mut now_s: f64,
    ) -> f64 {
        for _ in 0..n {
            let a = assigned(state, t(now_s), agents.0);
            let b = assigned(state, t(now_s), agents.1);
            assert_eq!(a.workunit, b.workunit, "probation pair shares a workunit");
            let out = campaign.compute(campaign.spec(a.workunit));
            let d1 = state.report(t(now_s + 1.0), campaign, a.replica, a.workunit, out.clone());
            assert_eq!(d1.verdict, Verdict::QuorumPending);
            let d2 = state.report(t(now_s + 2.0), campaign, b.replica, b.workunit, out);
            assert_eq!(d2.verdict, Verdict::Accepted);
            now_s += 3.0;
        }
        now_s
    }

    #[test]
    fn trusted_agents_graduate_to_single_replica_issues() {
        let (campaign, mut state) = setup_trust(0.0);
        let now_s = earn_trust(&campaign, &mut state, (1, 2), 5, 0.0);
        for agent in [1, 2] {
            let tr = state.agent_trust(agent).expect("ledger exists");
            assert_eq!(tr.accepted, 5, "agent {agent} quorum accepts");
            assert_eq!(
                tr.band(now_s, &state.trust_config()),
                TrustBand::Trusted,
                "agent {agent} should have graduated"
            );
        }
        // Both trusted: fresh fetches are singles — different workunits,
        // each validating on its lone report.
        let a = assigned(&mut state, t(now_s), 1);
        let b = assigned(&mut state, t(now_s), 2);
        assert_ne!(a.workunit, b.workunit, "trusted issues carry no sibling");
        let out = campaign.compute(campaign.spec(a.workunit));
        let d = state.report(t(now_s + 1.0), &campaign, a.replica, a.workunit, out);
        assert_eq!(d.verdict, Verdict::Accepted);
        assert!(d.completed_workunit, "a trusted single completes alone");
    }

    #[test]
    fn saboteur_trips_quarantine_and_is_readmitted_later() {
        let (campaign, mut state) = setup_trust(0.0);
        let cfg = state.trust_config();
        let mut now_s = 0.0;
        // Four consecutive quorum rejections: honest candidate first,
        // the saboteur's disagreeing copy second. A fresh honest agent
        // per round keeps everyone else safely in probation, and the
        // error reissue is drained each round so the next pair is a
        // fresh workunit.
        for k in 0..u64::from(cfg.quarantine_after) {
            let a = assigned(&mut state, t(now_s), 100 + k);
            let b = assigned(&mut state, t(now_s), 9);
            assert_eq!(a.workunit, b.workunit);
            let honest = campaign.compute(campaign.spec(a.workunit));
            let mut corrupt = honest.clone();
            corrupt.rows[0].eelec += 1e-9;
            state.report(
                t(now_s + 1.0),
                &campaign,
                a.replica,
                a.workunit,
                honest.clone(),
            );
            let d = state.report(t(now_s + 2.0), &campaign, b.replica, b.workunit, corrupt);
            assert_eq!(d.verdict, Verdict::QuorumRejected, "reject {k}");
            let c = assigned(&mut state, t(now_s + 2.0), 200 + k);
            assert_eq!(c.workunit, a.workunit, "error reissue comes first");
            let d = state.report(t(now_s + 3.0), &campaign, c.replica, c.workunit, honest);
            assert_eq!(d.verdict, Verdict::Accepted);
            now_s += 4.0;
        }
        let quarantined_at = now_s - 1.0;
        let tr = state.agent_trust(9).expect("saboteur ledger");
        assert_eq!(tr.quarantine_count, 1);
        assert_eq!(tr.rejected, 0, "quarantine resets the scoring window");
        assert_eq!(
            tr.band(quarantined_at, &cfg),
            TrustBand::Quarantined,
            "still serving quarantine"
        );
        // Work requests are refused with the remaining quarantine.
        let denied = state.fetch(t(quarantined_at), 9);
        match denied {
            WorkReply::Backoff { retry_after_ms, .. } => {
                assert!(
                    retry_after_ms > cfg.quarantine_base_s as u64 * 1000 / 2,
                    "backoff should cover the quarantine: {retry_after_ms} ms"
                );
            }
            other => panic!("quarantined agent got {other:?}"),
        }
        assert_eq!(state.net_stats.trust_denied_fetches, 1);
        // Honest agents are unaffected...
        let _ = assigned(&mut state, t(quarantined_at), 1);
        // ...and the saboteur is re-admitted once the timer expires.
        let readmit = quarantined_at + cfg.quarantine_base_s * 2.0 + 1.0;
        let _ = assigned(&mut state, t(readmit), 9);
    }

    #[test]
    fn spot_check_confirms_an_honest_single() {
        let (campaign, mut state) = setup_trust(1.0);
        let now_s = earn_trust(&campaign, &mut state, (1, 2), 5, 0.0);
        let a = assigned(&mut state, t(now_s), 1);
        let honest = campaign.compute(campaign.spec(a.workunit));
        let d = state.report(
            t(now_s + 1.0),
            &campaign,
            a.replica,
            a.workunit,
            honest.clone(),
        );
        assert!(d.completed_workunit, "trusted single");
        // Rate 1.0: the accepted single is queued for audit, and the
        // campaign must not be reported complete until it drains.
        assert!(!state.is_campaign_complete());
        let audit = assigned(&mut state, t(now_s + 2.0), 2);
        assert_eq!(audit.workunit, a.workunit, "spot check served first");
        let d = state.report(
            t(now_s + 3.0),
            &campaign,
            audit.replica,
            audit.workunit,
            honest.clone(),
        );
        assert_eq!(d.verdict, Verdict::SpotConfirmed);
        assert!(!d.completed_workunit, "the workunit was already complete");
        assert_eq!(state.net_stats.spot_checks_passed, 1);
        assert_eq!(
            state.accepted[a.workunit as usize].as_ref(),
            Some(&honest),
            "a passed audit leaves the artifact alone"
        );
        assert_eq!(state.server_stats().spot_check_issues, 1);
    }

    #[test]
    fn spot_mismatch_craters_the_cheat_and_retracts_its_single() {
        let (campaign, mut state) = setup_trust(1.0);
        let now_s = earn_trust(&campaign, &mut state, (1, 2), 5, 0.0);
        // Trusted agent 1 slips a corrupted-but-in-bounds single past
        // validation: accepted provisionally, queued for audit.
        let a = assigned(&mut state, t(now_s), 1);
        let wu = a.workunit;
        let honest = campaign.compute(campaign.spec(wu));
        let mut corrupt = honest.clone();
        corrupt.rows[0].eelec += 1e-9;
        let d = state.report(t(now_s + 1.0), &campaign, a.replica, wu, corrupt);
        assert!(d.completed_workunit, "the poisoned single sails through");
        // Agent 2's independent recomputation disagrees byte-for-byte.
        let audit = assigned(&mut state, t(now_s + 2.0), 2);
        assert_eq!(audit.workunit, wu);
        let d = state.report(
            t(now_s + 3.0),
            &campaign,
            audit.replica,
            audit.workunit,
            honest.clone(),
        );
        assert_eq!(d.verdict, Verdict::SpotMismatch);
        assert_eq!(state.net_stats.spot_checks_failed, 1);
        assert_eq!(state.net_stats.workunits_invalidated, 1);
        assert_eq!(state.accepted[wu as usize], None, "artifact retracted");
        let tr = state.agent_trust(1).expect("cheater ledger");
        assert_eq!(tr.spot_failed, 1);
        assert_eq!(
            tr.quarantine_count, 1,
            "a failed audit craters to quarantine"
        );
        // The retracted workunit is re-replicated under forced quorum:
        // two fresh replicas, byte-matching pair required again.
        let b = assigned(&mut state, t(now_s + 4.0), 2);
        let c = assigned(&mut state, t(now_s + 4.0), 3);
        assert_eq!(b.workunit, wu, "error reissue comes first");
        assert_eq!(c.workunit, wu, "two replicas for the forced quorum");
        let d1 = state.report(t(now_s + 5.0), &campaign, b.replica, wu, honest.clone());
        assert_eq!(d1.verdict, Verdict::QuorumPending);
        let d2 = state.report(t(now_s + 6.0), &campaign, c.replica, wu, honest.clone());
        assert_eq!(d2.verdict, Verdict::Accepted);
        assert_eq!(
            state.accepted[wu as usize].as_ref(),
            Some(&honest),
            "the honest pair repairs the artifact"
        );
    }

    #[test]
    fn trust_state_round_trips_through_the_snapshot() {
        let (campaign, mut state) = setup_trust(1.0);
        let now_s = earn_trust(&campaign, &mut state, (1, 2), 5, 0.0);
        // Leave a single accepted with its audit still queued, so the
        // snapshot carries non-trivial spot state.
        let a = assigned(&mut state, t(now_s), 1);
        let honest = campaign.compute(campaign.spec(a.workunit));
        state.report(
            t(now_s + 1.0),
            &campaign,
            a.replica,
            a.workunit,
            honest.clone(),
        );
        let snap = state.snapshot();
        let config = ServerConfig {
            deadline_seconds: 5.0,
            ..ServerConfig::default()
        };
        let faults = ServerFaults {
            trust: crate::trust::TrustConfig {
                spot_check_rate: 1.0,
                ..crate::trust::TrustConfig::on()
            },
            ..ServerFaults::default()
        };
        let mut twin = GridState::restore(&campaign, config, faults, snap).expect("restore");
        assert_eq!(
            twin.agent_trust_table(),
            state.agent_trust_table(),
            "trust ledgers survive the snapshot"
        );
        assert_eq!(twin.is_campaign_complete(), state.is_campaign_complete());
        // The restored state serves the same pending audit and judges it
        // the same way.
        let x = assigned(&mut state, t(now_s + 2.0), 2);
        let y = assigned(&mut twin, t(now_s + 2.0), 2);
        assert_eq!(x.workunit, y.workunit, "same pending spot check");
        assert_eq!(
            state
                .report(
                    t(now_s + 3.0),
                    &campaign,
                    x.replica,
                    x.workunit,
                    honest.clone()
                )
                .verdict,
            twin.report(t(now_s + 3.0), &campaign, y.replica, y.workunit, honest)
                .verdict,
        );
    }
}

//! The volunteer agent binary.
//!
//! ```text
//! hcmd-agent [--addr 127.0.0.1:7070] [--agent 1] [--threads 4]
//!            [--fault-profile none|flaky|reliable|saboteur] [--seed 0]
//!            [--codec v4|v3|binary|json] [--campaigns NAME,...|*]
//! ```
//!
//! Connects to an `hcmd-server`, learns the campaign from `HelloAck`,
//! and docks until the server reports the campaign complete. With
//! `--fault-profile flaky` the agent misbehaves on purpose —
//! disconnects mid-workunit, stalls past deadlines, flips result bits —
//! to exercise the server's reissue and quorum machinery. `--codec`
//! picks the wire codec: `v4` (protocol v4, the default: binary frames,
//! shard steering and campaign attachment), `v3` (shard steering only),
//! `binary` (protocol v2) or `json` (protocol v1). The agent steps down
//! one protocol level per failed handshake on its own, so the default
//! works against every server release.
//!
//! Against a multi-campaign server, `--campaigns a,b` volunteers only
//! for the named campaigns and `--campaigns '*'` for all of them;
//! without the flag the agent lands on the server's default (first)
//! campaign. Attachment needs the v4 codec — the flag is ignored on
//! the older wires.

use netgrid::{run_agent, AgentConfig, Codec, FaultProfile};

fn usage() -> ! {
    eprintln!(
        "usage: hcmd-agent [--addr HOST:PORT] [--agent N] [--threads N] \
         [--fault-profile none|flaky|reliable|saboteur] [--seed N] \
         [--codec v4|v3|binary|json] [--campaigns NAME,...|*]"
    );
    std::process::exit(2);
}

fn take(args: &[String], i: &mut usize) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| usage())
}

fn main() {
    let mut config = AgentConfig::new("127.0.0.1:7070", 1);

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = take(&args, &mut i),
            "--agent" => config.agent = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--threads" => config.threads = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => config.seed = take(&args, &mut i).parse().unwrap_or_else(|_| usage()),
            "--fault-profile" => {
                config.profile = FaultProfile::parse(&take(&args, &mut i)).unwrap_or_else(|e| {
                    eprintln!("hcmd-agent: {e}");
                    usage()
                })
            }
            "--codec" => {
                config.codec = Codec::parse(&take(&args, &mut i)).unwrap_or_else(|e| {
                    eprintln!("hcmd-agent: {e}");
                    usage()
                })
            }
            "--campaigns" => {
                config.campaigns = take(&args, &mut i)
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect()
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }

    match run_agent(config) {
        Ok(report) => {
            println!(
                "agent done: {} assignments, {} reported, {} accepted (faults: {} disconnect, {} stall, {} corrupt)",
                report.assignments,
                report.reported,
                report.accepted,
                report.disconnect_faults,
                report.stall_faults,
                report.corrupt_faults
            );
            if report.redirects_followed > 0 {
                println!("followed {} shard redirect(s)", report.redirects_followed);
            }
            if report.saw_completion {
                println!("campaign complete — thanks for volunteering");
            }
        }
        Err(e) => {
            eprintln!("hcmd-agent: {e}");
            std::process::exit(1);
        }
    }
}

//! The task-server daemon.
//!
//! ```text
//! hcmd-server [--addr 127.0.0.1:7070] [--proteins 2] [--seed 7]
//!             [--h-seconds 40] [--deadline 30] [--max-connections 64]
//!             [--events PATH] [--journal DIR] [--fsync always|never|every=N]
//!             [--snapshot-every N] [--out PATH] [--ops-addr HOST:PORT]
//!             [--trust on|off] [--trust-spot-rate F] [--trust-spot-seed N]
//!             [--trust-min-samples N] [--trust-state-out PATH]
//!             [--shard-id N --shards N --peers ADDR,ADDR,...]
//! ```
//!
//! Binds, prints the resolved address, then runs the campaign to
//! completion and prints the closing statistics. Pair it with one or
//! more `hcmd-agent` processes (see README "Two terminals, one grid").
//!
//! With `--ops-addr` the server additionally serves a read-only HTTP
//! observability endpoint while it runs: `GET /metrics` (Prometheus
//! text exposition) and `GET /` (a self-contained HTML status page).
//! See README "Watching a live campaign".
//!
//! With `--journal DIR` the server is crash-safe: every scheduler
//! transition is appended to a write-ahead log under `DIR`, and a
//! restarted server replays it and resumes the campaign exactly where
//! the crash left it (see DESIGN.md §6 "Durability"). `--out PATH`
//! writes the merged validated artifact as JSON on completion, which
//! the restart smoke test byte-compares against an uninterrupted run.
//!
//! With `--trust on` the server runs trust-adaptive replication (see
//! DESIGN.md §6 "Trust-adaptive replication"): agents with a clean
//! accept history get single-replica issues backed by seeded spot
//! checks, agents with a dirty one get full quorum or quarantine.
//! `--trust-state-out PATH` writes the closing per-agent trust ledger
//! as JSON, which the trust restart regression compares across a
//! `kill -9`.
//!
//! With `--shard-id I --shards N --peers A0,A1,...,A(N-1)` this server
//! runs as one shard of an N-server campaign (see DESIGN.md §6
//! "Sharding & steering"): it owns the workunits the deterministic
//! shard map assigns to shard I, steers idle agents toward loaded
//! peers, and steals work by lease when it drains first. `--peers`
//! lists every shard's client address in shard order, *including this
//! server's own*. A sharded `--out` writes the per-shard partial
//! artifact; combine the N partials with `netgrid::merge_artifacts`
//! (the e2e bench's `--shards` mode does this and byte-compares the
//! result against a single-server run).
//!
//! With repeated `--campaign NAME:SHARE:PRIORITY[:k=v,...]` flags the
//! server hosts several isolated campaigns at once, arbitrated by the
//! deficit-weighted fair-share scheduler (see DESIGN.md §6
//! "Multi-campaign fair-share"). Knobs: `proteins`, `seed`, `hours`,
//! `spacing`, `iters` — unset knobs inherit the top-level flags. With
//! multiple campaigns, `--out base.json` writes one artifact per
//! campaign as `base.NAME.json`, each byte-identical to the artifact a
//! solo server running only that campaign would write. `--journal DIR`
//! keeps one journal per campaign under `DIR/NAME/`.

use netgrid::{
    CampaignDef, FsyncPolicy, JournalConfig, NetServer, NetServerConfig, ShardSpec, ShardTopology,
};

fn usage() -> ! {
    eprintln!(
        "usage: hcmd-server [--addr HOST:PORT] [--proteins N] [--seed N] \
         [--h-seconds S] [--deadline S] [--max-connections N] [--events PATH] \
         [--journal DIR] [--fsync always|never|every=N] [--snapshot-every N] \
         [--out PATH] [--ops-addr HOST:PORT] [--trust on|off] \
         [--trust-spot-rate F] [--trust-spot-seed N] [--trust-min-samples N] \
         [--trust-state-out PATH] [--shard-id N --shards N --peers ADDR,...] \
         [--campaign NAME:SHARE:PRIORITY[:k=v,...]]..."
    );
    std::process::exit(2);
}

fn take(args: &[String], i: &mut usize) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| usage())
}

/// `base.json` + campaign `pilot` → `base.pilot.json`; extensionless
/// paths just append (`artifact` → `artifact.pilot`).
fn campaign_out_path(base: &str, name: &str) -> String {
    match base.rfind('.') {
        Some(dot) if !base[dot + 1..].contains('/') => {
            format!("{}.{}{}", &base[..dot], name, &base[dot..])
        }
        _ => format!("{base}.{name}"),
    }
}

fn main() {
    let mut config = NetServerConfig::loopback(30.0);
    config.addr = "127.0.0.1:7070".into();
    let mut events: Option<String> = None;
    let mut out: Option<String> = None;
    let mut trust_state_out: Option<String> = None;
    let mut fsync = FsyncPolicy::default();
    let mut snapshot_every = 4096u64;
    let mut shard_id: Option<u16> = None;
    let mut shards: Option<u16> = None;
    let mut peers: Vec<String> = Vec::new();
    let mut campaign_specs: Vec<String> = Vec::new();

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => config.addr = take(&args, &mut i),
            "--proteins" => {
                config.campaign.proteins = take(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--seed" => {
                config.campaign.lib_seed = take(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--h-seconds" => {
                config.campaign.h_seconds = take(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--deadline" => {
                config.scheduler.deadline_seconds =
                    take(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--max-connections" => {
                config.faults.max_connections =
                    take(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--events" => events = Some(take(&args, &mut i)),
            "--journal" => {
                config.journal = Some(JournalConfig::new(take(&args, &mut i)));
            }
            "--fsync" => {
                fsync = FsyncPolicy::parse(&take(&args, &mut i)).unwrap_or_else(|e| {
                    eprintln!("hcmd-server: {e}");
                    usage()
                })
            }
            "--snapshot-every" => {
                snapshot_every = take(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--out" => out = Some(take(&args, &mut i)),
            "--ops-addr" => config.ops_addr = Some(take(&args, &mut i)),
            "--trust" => match take(&args, &mut i).as_str() {
                "on" => config.faults.trust.enabled = true,
                "off" => config.faults.trust.enabled = false,
                _ => usage(),
            },
            "--trust-spot-rate" => {
                config.faults.trust.spot_check_rate =
                    take(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--trust-spot-seed" => {
                config.faults.trust.spot_seed =
                    take(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--trust-min-samples" => {
                config.faults.trust.min_samples =
                    take(&args, &mut i).parse().unwrap_or_else(|_| usage())
            }
            "--trust-state-out" => trust_state_out = Some(take(&args, &mut i)),
            "--shard-id" => {
                shard_id = Some(take(&args, &mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--shards" => shards = Some(take(&args, &mut i).parse().unwrap_or_else(|_| usage())),
            "--peers" => peers = take(&args, &mut i).split(',').map(str::to_string).collect(),
            "--campaign" => campaign_specs.push(take(&args, &mut i)),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    if let Some(journal) = &mut config.journal {
        journal.fsync = fsync;
        journal.snapshot_every = snapshot_every;
    }
    // Campaign specs resolve against the top-level recipe flags, so
    // they are parsed only after the whole command line is read.
    for spec in &campaign_specs {
        match CampaignDef::parse(spec, config.campaign) {
            Ok(def) => config.campaigns.push(def),
            Err(e) => {
                eprintln!("hcmd-server: bad --campaign {spec}: {e}");
                usage()
            }
        }
    }
    match (shard_id, shards, peers.is_empty()) {
        (None, None, true) => {}
        (Some(shard_id), Some(shards), false) => {
            config.shard = Some(ShardTopology {
                spec: ShardSpec { shard_id, shards },
                addrs: peers,
            });
        }
        _ => {
            eprintln!("hcmd-server: --shard-id, --shards and --peers must be given together");
            usage()
        }
    }

    if let Some(path) = &events {
        if let Err(e) = telemetry::install_jsonl(std::path::Path::new(path)) {
            eprintln!("hcmd-server: cannot open event log {path}: {e}");
            std::process::exit(1);
        }
        if !telemetry::ENABLED {
            eprintln!("hcmd-server: --events given but telemetry is compiled out (build with --features telemetry)");
        }
    }

    let server = match NetServer::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hcmd-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("hcmd-server: listening on {addr}"),
        Err(e) => eprintln!("hcmd-server: local_addr: {e}"),
    }
    if let (Some(id), Some(n)) = (shard_id, shards) {
        println!("hcmd-server: shard {id} of {n}");
    }
    for spec in &campaign_specs {
        println!("hcmd-server: hosting campaign {spec}");
    }
    if let Some(addr) = server.ops_addr() {
        println!("hcmd-server: ops endpoint on http://{addr}/ (metrics at /metrics)");
    }

    match server.run() {
        Ok(report) => {
            println!(
                "campaign complete: {} workunits in {:.1} s ({} connections, {} rejected)",
                report.workunits,
                report.wall_seconds,
                report.connections,
                report.rejected_connections
            );
            println!(
                "issues: {} initial, {} quorum, {} timeout reissues, {} error reissues",
                report.server_stats.initial_issues,
                report.server_stats.quorum_issues,
                report.server_stats.timeout_reissues,
                report.server_stats.error_reissues
            );
            println!(
                "wire: {} quorum-rejected, {} bounds-rejected, {} duplicates, {} expiries, {} backoffs",
                report.net_stats.quorum_rejected,
                report.net_stats.bounds_rejected,
                report.net_stats.duplicates_dropped,
                report.net_stats.deadline_expiries,
                report.net_stats.backoffs_sent
            );
            if report.shard.shards > 1 {
                println!(
                    "shard {}/{}: {} redirects, {} leases out ({} wus), {} leases in ({} wus)",
                    report.shard.shard_id,
                    report.shard.shards,
                    report.net_stats.shard_redirects,
                    report.net_stats.shard_leases_out,
                    report.net_stats.shard_wus_leased_out,
                    report.net_stats.shard_leases_in,
                    report.net_stats.shard_wus_leased_in
                );
            }
            if report.campaigns.len() > 1 {
                let total: f64 = report
                    .campaigns
                    .iter()
                    .map(|c| c.delivered_ref_seconds)
                    .sum();
                for c in &report.campaigns {
                    let got = if total > 0.0 {
                        c.delivered_ref_seconds / total
                    } else {
                        0.0
                    };
                    println!(
                        "campaign {}: {} workunits, share {:.0}% -> delivered {:.1}% \
                         ({:.0} ref-s, {} borrows)",
                        c.name,
                        c.workunits,
                        100.0 * c.share,
                        100.0 * got,
                        c.delivered_ref_seconds,
                        c.borrows
                    );
                }
                println!(
                    "fair-share error {:.3}, {} cross-campaign quarantine denials",
                    report.share_error, report.cross_quarantine_denials
                );
            }
            if let Some(t) = &report.trust {
                println!(
                    "trust: {} trusted, {} probation, {} untrusted, {} quarantined \
                     ({} ever), spot checks {} passed / {} failed, {} fetches denied, \
                     {} workunits retracted, {:.0} ref-s wasted",
                    t.trusted,
                    t.probation,
                    t.untrusted,
                    t.quarantined,
                    t.ever_quarantined,
                    t.spot_checks_passed,
                    t.spot_checks_failed,
                    report.net_stats.trust_denied_fetches,
                    report.net_stats.workunits_invalidated,
                    report.wasted_ref_seconds
                );
            }
            if let Some(path) = &trust_state_out {
                let json =
                    serde_json::to_string(&report.agent_trust).expect("AgentTrust serializes");
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("hcmd-server: cannot write trust state {path}: {e}");
                    telemetry::shutdown();
                    std::process::exit(1);
                }
                println!("trust state written to {path}");
            }
            if let Some(path) = &out {
                // A sharded server only owns part of the catalog: its
                // artifact is the Option-per-slot partial, which
                // `netgrid::merge_artifact_json` combines with the
                // other shards' into the single-server byte stream.
                // A multi-campaign server writes one artifact per
                // campaign as `<stem>.<name><ext>`, each byte-identical
                // to a solo run of that campaign.
                if report.campaigns.len() > 1 {
                    for c in &report.campaigns {
                        let per = campaign_out_path(path, &c.name);
                        let json = if report.shard.shards > 1 {
                            serde_json::to_string(&c.partial_outputs)
                                .expect("DockingOutput serializes")
                        } else {
                            serde_json::to_string(&c.outputs).expect("DockingOutput serializes")
                        };
                        if let Err(e) = std::fs::write(&per, json) {
                            eprintln!("hcmd-server: cannot write artifact {per}: {e}");
                            telemetry::shutdown();
                            std::process::exit(1);
                        }
                        println!("artifact for campaign {} written to {per}", c.name);
                    }
                } else {
                    let json = if report.shard.shards > 1 {
                        serde_json::to_string(&report.partial_outputs)
                            .expect("DockingOutput serializes")
                    } else {
                        serde_json::to_string(&report.outputs).expect("DockingOutput serializes")
                    };
                    if let Err(e) = std::fs::write(path, json) {
                        eprintln!("hcmd-server: cannot write artifact {path}: {e}");
                        telemetry::shutdown();
                        std::process::exit(1);
                    }
                    println!("artifact written to {path}");
                }
            }
            telemetry::shutdown();
        }
        Err(e) => {
            eprintln!("hcmd-server: {e}");
            telemetry::shutdown();
            std::process::exit(1);
        }
    }
}

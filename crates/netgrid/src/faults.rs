//! Deterministic fault injection for live-grid runs.
//!
//! The simulator models volunteer unreliability statistically (§5.1:
//! deadline misses, erroneous results, host churn). The wire-level grid
//! reproduces the same failure classes as *concrete misbehaviour*:
//!
//! * **Disconnect** — the agent drops the TCP connection mid-workunit
//!   and reconnects; the abandoned replica ages out past its deadline
//!   and the server reissues it (§5.1 timeout reissue).
//! * **Stall** — the agent computes but sits on the result past the
//!   deadline before reporting; the server has already reissued, and the
//!   eventual report lands in the `late_results` bucket.
//! * **Corrupt** — the agent flips a low mantissa bit of one energy
//!   value. The frame checksum is recomputed by the (faulty, not
//!   byte-mangling) agent, and the value stays within §5.2 bounds — only
//!   quorum comparison can catch it, which is exactly the failure mode
//!   that policy exists for.
//!
//! Draws come from a per-agent `ChaCha8` stream seeded by
//! `(run seed, agent id)`, so a campaign's fault schedule is
//! reproducible run to run.

use maxdo::DockingOutput;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// What a faulty agent does with one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Compute and report honestly.
    None,
    /// Drop the connection without reporting; reconnect and move on.
    Disconnect,
    /// Report correctly, but only after the deadline has passed.
    Stall,
    /// Report a payload with one bit-flipped energy value.
    Corrupt,
}

/// Per-assignment fault probabilities. Evaluated in order — disconnect,
/// then stall, then corrupt — with at most one action per assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// P(drop the connection instead of reporting).
    pub disconnect: f64,
    /// P(report after the deadline).
    pub stall: f64,
    /// P(report a corrupted payload).
    pub corrupt: f64,
}

impl FaultProfile {
    /// A perfectly reliable volunteer.
    pub fn none() -> Self {
        Self {
            disconnect: 0.0,
            stall: 0.0,
            corrupt: 0.0,
        }
    }

    /// The default misbehaving volunteer: each failure class common
    /// enough that a small campaign exercises all three.
    pub fn flaky() -> Self {
        Self {
            disconnect: 0.15,
            stall: 0.10,
            corrupt: 0.15,
        }
    }

    /// An honest-but-unreliable volunteer: drops connections and stalls
    /// like `flaky`, but never corrupts a payload. This is the fleet
    /// the trust policy is designed to reward — its results are always
    /// byte-correct, so single-replica issues to it are safe and the
    /// merged artifact stays baseline-identical.
    pub fn reliable() -> Self {
        Self {
            disconnect: 0.15,
            stall: 0.10,
            corrupt: 0.0,
        }
    }

    /// The cheat: corrupts every payload it touches, never drops or
    /// stalls. Under the fixed quorum it burns rejection slots all
    /// campaign; under `--trust on` it is quarantined after a short
    /// run of rejections (README "Starving the saboteur").
    pub fn saboteur() -> Self {
        Self {
            disconnect: 0.0,
            stall: 0.0,
            corrupt: 1.0,
        }
    }

    /// Parses a profile name (`none` | `flaky` | `reliable` |
    /// `saboteur`), as accepted by `hcmd-agent --fault-profile`.
    pub fn parse(name: &str) -> Result<Self, String> {
        match name {
            "none" => Ok(Self::none()),
            "flaky" => Ok(Self::flaky()),
            "reliable" => Ok(Self::reliable()),
            "saboteur" => Ok(Self::saboteur()),
            other => Err(format!(
                "unknown fault profile '{other}' (none|flaky|reliable|saboteur)"
            )),
        }
    }
}

/// The per-agent fault stream.
pub struct FaultDice {
    rng: ChaCha8Rng,
    profile: FaultProfile,
    agent: u64,
    corruptions: u64,
}

impl FaultDice {
    /// One stream per `(run seed, agent)` — reproducible per agent, but
    /// uncorrelated between agents.
    pub fn new(seed: u64, agent: u64, profile: FaultProfile) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed ^ agent.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            profile,
            agent,
            corruptions: 0,
        }
    }

    /// Draws the fault action for the next assignment.
    pub fn draw(&mut self) -> FaultAction {
        let p: f64 = self.rng.gen();
        let d = self.profile.disconnect;
        let s = d + self.profile.stall;
        let c = s + self.profile.corrupt;
        if p < d {
            FaultAction::Disconnect
        } else if p < s {
            FaultAction::Stall
        } else if p < c {
            FaultAction::Corrupt
        } else {
            FaultAction::None
        }
    }

    /// Corrupts a computed output in place: one row's electrostatic term
    /// gets low mantissa bits flipped. Small enough to stay inside the
    /// §5.2 value ranges, large enough to break byte-level quorum
    /// agreement. The flipped pattern is salted by a per-draw counter
    /// (and the agent id), so two corruptions of the same workunit are
    /// never byte-identical — a saboteur that corrupts both replicas of
    /// a pair cannot accidentally self-validate its garbage.
    pub fn corrupt(&mut self, output: &mut DockingOutput) {
        if output.rows.is_empty() {
            return;
        }
        let idx = self.rng.gen_range(0..output.rows.len());
        self.corruptions += 1;
        let salt = (self.agent.wrapping_mul(31).wrapping_add(self.corruptions) & 0xffff) << 8;
        let row = &mut output.rows[idx];
        row.eelec = f64::from_bits(row.eelec.to_bits() ^ (1 << 30) ^ salt);
    }
}

/// Server-side fault/limit knobs.
///
/// Serializable because the journal header records them: a journaled
/// campaign must resume under the same limits it ran under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerFaults {
    /// Connections beyond this are turned away with `Busy` (0 = off).
    pub max_connections: usize,
    /// Base of the per-agent exponential backoff, ms.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, ms.
    pub backoff_max_ms: u64,
    /// Extra deterministic jitter added per retry, ms (spreads agent
    /// retries so they do not re-collide; derived from the agent id,
    /// not a clock, to keep runs reproducible).
    pub backoff_jitter_ms: u64,
    /// Trust-adaptive replication policy. In the journal header
    /// identity alongside the other knobs: a journal written under one
    /// trust policy refuses to replay under another.
    pub trust: crate::trust::TrustConfig,
}

impl Default for ServerFaults {
    fn default() -> Self {
        Self {
            max_connections: 64,
            backoff_base_ms: 20,
            backoff_max_ms: 2_000,
            backoff_jitter_ms: 17,
            trust: crate::trust::TrustConfig::off(),
        }
    }
}

impl ServerFaults {
    /// Backoff for an agent's `miss`-th consecutive empty fetch:
    /// exponential in `miss`, capped, plus per-agent jitter.
    pub fn backoff_ms(&self, agent: u64, miss: u32) -> u64 {
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << miss.min(10))
            .min(self.backoff_max_ms);
        let jitter = (agent
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(u64::from(miss)))
            % (self.backoff_jitter_ms.max(1));
        exp + jitter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{DockingRow, EulerZyz, Vec3};

    #[test]
    fn fault_stream_is_deterministic_per_agent() {
        let draws = |agent: u64| {
            let mut dice = FaultDice::new(99, agent, FaultProfile::flaky());
            (0..32).map(|_| dice.draw()).collect::<Vec<_>>()
        };
        assert_eq!(draws(3), draws(3));
        assert_ne!(draws(3), draws(4), "agents share one schedule");
    }

    #[test]
    fn flaky_profile_hits_every_class() {
        let mut dice = FaultDice::new(1, 1, FaultProfile::flaky());
        let mut seen = [false; 4];
        for _ in 0..400 {
            match dice.draw() {
                FaultAction::None => seen[0] = true,
                FaultAction::Disconnect => seen[1] = true,
                FaultAction::Stall => seen[2] = true,
                FaultAction::Corrupt => seen[3] = true,
            }
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn none_profile_never_faults() {
        let mut dice = FaultDice::new(1, 1, FaultProfile::none());
        assert!((0..200).all(|_| dice.draw() == FaultAction::None));
    }

    #[test]
    fn corruption_changes_bytes_but_stays_in_bounds() {
        let mut out = DockingOutput {
            rows: vec![DockingRow {
                isep: 1,
                irot: 1,
                position: Vec3::new(5.0, 0.0, 0.0),
                orientation: EulerZyz::default(),
                elj: -2.0,
                eelec: 1.5,
            }],
            evaluations: 10,
        };
        let clean = out.clone();
        let mut dice = FaultDice::new(7, 7, FaultProfile::flaky());
        dice.corrupt(&mut out);
        assert_ne!(out, clean, "corruption must change the payload");
        let delta = (out.rows[0].eelec - clean.rows[0].eelec).abs();
        assert!(delta < 1.0, "bit flip too large to pass bounds: {delta}");
    }

    #[test]
    fn backoff_grows_and_caps() {
        let f = ServerFaults::default();
        // With base 20 ms and cap 2000 ms the exponential part doubles
        // through miss 6 (20·2⁶ = 1280) and saturates at the cap from
        // miss 7 on (20·2⁷ = 2560 → 2000). Jitter is < 17 ms, smaller
        // than every doubling step, so growth below the cap is strict.
        for agent in [0u64, 1, 7, 1_000_003] {
            for miss in 0..7 {
                let lo = f.backoff_ms(agent, miss);
                let hi = f.backoff_ms(agent, miss + 1);
                assert!(
                    lo < hi,
                    "backoff must strictly grow below the cap: \
                     agent={agent} miss={miss}: {lo} → {hi}"
                );
            }
            // Past the knee every backoff sits in the cap band
            // [max, max + jitter): capped, but never above the ceiling.
            for miss in 7..40 {
                let b = f.backoff_ms(agent, miss);
                assert!(
                    (f.backoff_max_ms..f.backoff_max_ms + f.backoff_jitter_ms).contains(&b),
                    "agent={agent} miss={miss}: {b} outside the cap band"
                );
            }
        }
    }

    #[test]
    fn profile_parsing() {
        assert_eq!(FaultProfile::parse("flaky"), Ok(FaultProfile::flaky()));
        assert_eq!(FaultProfile::parse("none"), Ok(FaultProfile::none()));
        assert!(FaultProfile::parse("chaotic").is_err());
    }
}

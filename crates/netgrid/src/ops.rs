//! The read-only HTTP observability endpoint.
//!
//! The paper's operators steered a 26-week campaign by watching live
//! per-protein progression and fleet health (Figs. 1/6/7); this module
//! is that surface for `hcmd-server`. It is deliberately tiny: a
//! hand-rolled HTTP/1.1 responder on the same nonblocking-accept
//! pattern as the task listener, two routes, zero dependencies.
//!
//! * `GET /metrics` — Prometheus text exposition: every registry metric
//!   (via `telemetry::exposition`) plus the scheduler-state families
//!   rendered from an [`OpsSnapshot`].
//! * `GET /` — a self-contained HTML status page (inline CSS, no
//!   external assets, meta-refresh): per-receptor progression, virtual
//!   full-time processors, workunit state counts, reissue and
//!   quorum-reject rates, journal epoch/lag, and the per-agent table.
//!
//! # Why scrapes cannot stall the grid
//!
//! The endpoint never holds the state lock across I/O: it takes a
//! [`GridState::ops_snapshot`] — a copy of counters and short vecs — in
//! one short critical section, drops the lock, then renders and writes
//! to the socket at the scraper's pace. A slow or wedged scraper costs
//! the fetch/report hot path exactly one cheap copy. Requests are
//! served one at a time on the ops thread; concurrent scrapers queue in
//! the listener backlog rather than spawning threads into the server.
//!
//! The ops thread keeps answering for a short linger window
//! ([`OPS_LINGER`]) after the campaign completes, so a scraper polling
//! mid-run gets to observe the final state before the socket closes.

use crate::registry::MultiGrid;
use crate::state::OpsSnapshot;
use crate::sys::Poller;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use telemetry::exposition::{MetricKind, TextRenderer};

/// Maximum request-line length; longer lines get `414 URI Too Long`.
const MAX_REQUEST_LINE: usize = 1024;

/// Maximum total request-head size; bigger heads get `431`.
const MAX_REQUEST_HEAD: usize = 8192;

/// How long the endpoint keeps serving after the campaign completes.
const OPS_LINGER: Duration = Duration::from_secs(1);

/// Per-connection socket timeout: bounds how long one misbehaving
/// scraper can occupy the (single) serving thread.
const OPS_IO_TIMEOUT: Duration = Duration::from_millis(500);

/// Upper bound on one readiness wait: how often the accept loop checks
/// the `done` flag when no scraper is knocking. A pending connection
/// wakes the wait immediately — this is *not* a latency floor the way
/// the old fixed 10 ms sleep-poll was, which put a uniform 0–10 ms of
/// queueing ahead of every scrape and pushed the observed p99 over
/// 10 ms for a sub-millisecond render.
const ACCEPT_WAIT: Duration = Duration::from_millis(50);

struct Tele {
    requests: &'static telemetry::Counter,
    bad_requests: &'static telemetry::Counter,
    bytes_out: &'static telemetry::Counter,
    scrape_us: &'static telemetry::Histogram,
}

impl Tele {
    fn new() -> Self {
        Self {
            requests: telemetry::counter("net.ops.requests"),
            bad_requests: telemetry::counter("net.ops.bad_requests"),
            bytes_out: telemetry::counter("net.ops.bytes_out"),
            scrape_us: telemetry::histogram("net.ops.scrape_us"),
        }
    }
}

/// A bound, not-yet-serving ops endpoint.
pub struct OpsServer {
    listener: TcpListener,
}

impl OpsServer {
    /// Binds the ops listener (port 0 lets the OS pick).
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Self { listener })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Spawns the serving thread. It answers scrapes until `done` is
    /// set *and* the linger window has passed, then drops its state
    /// handle and exits — the server joins it before tearing the state
    /// down.
    pub fn spawn(
        self,
        grid: Arc<Mutex<MultiGrid>>,
        done: Arc<AtomicBool>,
    ) -> thread::JoinHandle<()> {
        thread::spawn(move || {
            let tele = Tele::new();
            let mut done_since: Option<Instant> = None;
            // Readiness-waited accept: scrapes are served the moment
            // the SYN lands instead of after a sleep-poll tick.
            let mut poller = Poller::new().ok();
            if let Some(p) = poller.as_mut() {
                if p.register(self.listener.as_raw_fd(), true, false).is_err() {
                    poller = None;
                }
            }
            let mut events = Vec::new();
            loop {
                if done.load(Relaxed) {
                    if done_since.get_or_insert_with(Instant::now).elapsed() > OPS_LINGER {
                        return;
                    }
                } else {
                    done_since = None;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => serve_one(stream, &grid, &tele),
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => match poller.as_mut() {
                        Some(p) => {
                            let _ = p.wait(Some(ACCEPT_WAIT), &mut events);
                        }
                        // Degraded fallback if the poller could not be
                        // set up: the old fixed-tick behaviour.
                        None => thread::sleep(Duration::from_millis(10)),
                    },
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(_) => return,
                }
            }
        })
    }
}

/// Reads one request head and writes one response; never touches
/// scheduler state unless the request parsed to a known GET route.
fn serve_one(mut stream: TcpStream, grid: &Arc<Mutex<MultiGrid>>, tele: &Tele) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(OPS_IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(OPS_IO_TIMEOUT));
    tele.requests.inc();
    let started = Instant::now();
    let response = match read_request_head(&mut stream) {
        Ok(head) => match parse_request_line(&head) {
            Ok(("GET", path)) => match path {
                "/metrics" => {
                    let snap = { grid.lock().unwrap().ops_snapshot() };
                    Response::ok(
                        "text/plain; version=0.0.4; charset=utf-8",
                        render_metrics(&snap),
                    )
                }
                "/" | "/index.html" => {
                    let snap = { grid.lock().unwrap().ops_snapshot() };
                    Response::ok("text/html; charset=utf-8", render_dashboard(&snap))
                }
                _ => Response::error(404, "not found\n"),
            },
            Ok((_other, _)) => Response::error(405, "only GET is served here\n"),
            Err(status) => Response::error(status, "malformed request\n"),
        },
        Err(status) => Response::error(status, "request head too large\n"),
    };
    if response.status != 200 {
        tele.bad_requests.inc();
    }
    let bytes = response.into_bytes();
    tele.bytes_out.add(bytes.len() as u64);
    let _ = stream.write_all(&bytes);
    let _ = stream.flush();
    tele.scrape_us.record(started.elapsed().as_micros() as u64);
}

/// Reads until the `\r\n\r\n` head terminator, bounded by
/// [`MAX_REQUEST_HEAD`]. Returns the head text or a 4xx status.
fn read_request_head(stream: &mut TcpStream) -> Result<String, u16> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n")
                    || head.windows(2).any(|w| w == b"\n\n")
                {
                    break;
                }
                if head.len() > MAX_REQUEST_HEAD {
                    return Err(431u16);
                }
            }
            Err(ref e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                break
            }
            Err(_) => return Err(400),
        }
    }
    String::from_utf8(head).map_err(|_| 400u16)
}

/// Parses `METHOD SP PATH SP HTTP/x.y` out of the head's first line.
/// Returns the 4xx status for malformed or oversized request lines.
fn parse_request_line(head: &str) -> Result<(&str, &str), u16> {
    let line = head.lines().next().ok_or(400u16)?;
    if line.len() > MAX_REQUEST_LINE {
        return Err(414u16);
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or(400u16)?;
    let path = parts.next().ok_or(400u16)?;
    let version = parts.next().ok_or(400u16)?;
    if !version.starts_with("HTTP/") {
        return Err(400u16);
    }
    // Ignore any query string: `/metrics?foo` scrapes the same document.
    let path = path.split('?').next().unwrap_or(path);
    Ok((method, path))
}

struct Response {
    status: u16,
    content_type: &'static str,
    body: String,
}

impl Response {
    fn ok(content_type: &'static str, body: String) -> Self {
        Self {
            status: 200,
            content_type,
            body,
        }
    }

    fn error(status: u16, body: &str) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
        }
    }

    fn into_bytes(self) -> Vec<u8> {
        let reason = match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            414 => "URI Too Long",
            431 => "Request Header Fields Too Large",
            _ => "Error",
        };
        format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
            self.status,
            reason,
            self.content_type,
            self.body.len(),
            self.body
        )
        .into_bytes()
    }
}

/// Renders the full `/metrics` document: the telemetry registry first
/// (empty when the `telemetry` feature is off), then the scheduler
/// families from the ops snapshot.
pub fn render_metrics(snap: &OpsSnapshot) -> String {
    let mut doc = telemetry::render_snapshot(&telemetry::snapshot());
    let mut r = TextRenderer::new();

    let n = r.family(
        "hcmd_wu_states",
        MetricKind::Gauge,
        "Workunit state counts by lifecycle state",
    );
    r.sample(&n, &[("state", "total")], snap.wu.total as f64);
    r.sample(&n, &[("state", "issued")], snap.wu.issued as f64);
    r.sample(&n, &[("state", "in_flight")], snap.wu.in_flight as f64);
    r.sample(
        &n,
        &[("state", "quorum_pending")],
        snap.wu.quorum_pending as f64,
    );
    r.sample(&n, &[("state", "done")], snap.wu.done as f64);

    let n = r.family(
        "hcmd_receptor_workunits",
        MetricKind::Gauge,
        "Per-receptor workunit progression (paper Fig. 1)",
    );
    for p in &snap.receptors {
        let receptor = p.receptor.to_string();
        r.sample(
            &n,
            &[("receptor", receptor.as_str()), ("state", "done")],
            f64::from(p.completed),
        );
        r.sample(
            &n,
            &[("receptor", receptor.as_str()), ("state", "total")],
            f64::from(p.total),
        );
    }

    let n = r.family(
        "hcmd_replicas_issued",
        MetricKind::Counter,
        "Replicas issued by cause",
    );
    r.sample(
        &n,
        &[("cause", "initial")],
        snap.stats.initial_issues as f64,
    );
    r.sample(&n, &[("cause", "quorum")], snap.stats.quorum_issues as f64);
    r.sample(
        &n,
        &[("cause", "timeout")],
        snap.stats.timeout_reissues as f64,
    );
    r.sample(&n, &[("cause", "error")], snap.stats.error_reissues as f64);

    let n = r.family(
        "hcmd_results_received",
        MetricKind::Counter,
        "Results received over the campaign",
    );
    r.sample(&n, &[], snap.results_received as f64);
    let n = r.family(
        "hcmd_results_useful",
        MetricKind::Counter,
        "Useful (non-redundant, valid) results",
    );
    r.sample(&n, &[], snap.results_useful as f64);

    let n = r.family(
        "hcmd_results_rejected",
        MetricKind::Counter,
        "Results rejected by validation layer",
    );
    r.sample(
        &n,
        &[("layer", "quorum")],
        snap.net_stats.quorum_rejected as f64,
    );
    r.sample(
        &n,
        &[("layer", "bounds")],
        snap.net_stats.bounds_rejected as f64,
    );

    let n = r.family(
        "hcmd_redundancy_factor",
        MetricKind::Gauge,
        "Results received / useful results (paper section 6)",
    );
    r.sample(&n, &[], snap.redundancy_factor);

    let n = r.family(
        "hcmd_virtual_full_time_processors",
        MetricKind::Gauge,
        "Validated reference CPU seconds / campaign seconds (paper section 3.1)",
    );
    r.sample(&n, &[], vftp(snap));

    let n = r.family(
        "hcmd_outstanding_replicas",
        MetricKind::Gauge,
        "Issued, unreported, unexpired replicas",
    );
    r.sample(&n, &[], snap.outstanding_replicas as f64);

    let n = r.family(
        "hcmd_reissue_queue_depth",
        MetricKind::Gauge,
        "Workunits queued for another replica",
    );
    r.sample(&n, &[], snap.reissue_queue_depth as f64);

    let n = r.family(
        "hcmd_quorum_candidate_workunits",
        MetricKind::Gauge,
        "Incomplete workunits holding quorum candidates",
    );
    r.sample(&n, &[], snap.quorum_candidate_workunits as f64);

    let n = r.family(
        "hcmd_deadline_expiries",
        MetricKind::Counter,
        "Replica deadlines expired by the sweeper",
    );
    r.sample(&n, &[], snap.net_stats.deadline_expiries as f64);

    let n = r.family(
        "hcmd_backoffs_sent",
        MetricKind::Counter,
        "Fetches answered with a backoff",
    );
    r.sample(&n, &[], snap.net_stats.backoffs_sent as f64);

    let n = r.family(
        "hcmd_agents_seen",
        MetricKind::Gauge,
        "Agents that have fetched or reported",
    );
    r.sample(&n, &[], snap.agents.len() as f64);

    let n = r.family(
        "hcmd_server_clock_seconds",
        MetricKind::Gauge,
        "Latest server-clock second any entry point has seen",
    );
    r.sample(&n, &[], snap.last_now);

    let n = r.family(
        "hcmd_campaign_complete",
        MetricKind::Gauge,
        "1 once every workunit validated",
    );
    r.sample(&n, &[], if snap.campaign_complete { 1.0 } else { 0.0 });

    if let Some(j) = &snap.journal {
        let n = r.family(
            "hcmd_journal_epoch",
            MetricKind::Gauge,
            "Snapshot epoch of the write-ahead journal",
        );
        r.sample(&n, &[], j.epoch as f64);
        let n = r.family(
            "hcmd_journal_wal_appends_since_snapshot",
            MetricKind::Gauge,
            "Wal frames since the last compacting snapshot (journal lag)",
        );
        r.sample(&n, &[], j.wal_appends_since_snapshot as f64);
    }

    if let Some(sh) = &snap.shard {
        let n = r.family(
            "hcmd_shard_info",
            MetricKind::Gauge,
            "Shard identity: always 1, labelled with shard id and topology size",
        );
        let shard_id = sh.shard_id.to_string();
        let shards = sh.shards.to_string();
        r.sample(
            &n,
            &[("shard", shard_id.as_str()), ("shards", shards.as_str())],
            1.0,
        );
        let n = r.family(
            "hcmd_shard_owned_workunits",
            MetricKind::Gauge,
            "Workunits this shard currently owns (initial partition plus leases)",
        );
        r.sample(&n, &[], sh.owned_workunits as f64);
        let n = r.family(
            "hcmd_shard_fresh_backlog",
            MetricKind::Gauge,
            "Owned workunits never yet issued to any agent",
        );
        r.sample(&n, &[], sh.fresh_backlog as f64);
        let n = r.family(
            "hcmd_shard_redirects",
            MetricKind::Counter,
            "Drained-shard fetches answered with a redirect to a loaded peer",
        );
        r.sample(&n, &[], snap.net_stats.shard_redirects as f64);
        let n = r.family(
            "hcmd_shard_leases",
            MetricKind::Counter,
            "Work-stealing leases by direction (out = granted, in = adopted)",
        );
        r.sample(
            &n,
            &[("direction", "out")],
            snap.net_stats.shard_leases_out as f64,
        );
        r.sample(
            &n,
            &[("direction", "in")],
            snap.net_stats.shard_leases_in as f64,
        );
        let n = r.family(
            "hcmd_shard_leased_workunits",
            MetricKind::Counter,
            "Workunits moved by work-stealing leases, by direction",
        );
        r.sample(
            &n,
            &[("direction", "out")],
            snap.net_stats.shard_wus_leased_out as f64,
        );
        r.sample(
            &n,
            &[("direction", "in")],
            snap.net_stats.shard_wus_leased_in as f64,
        );
    }

    let n = r.family(
        "hcmd_wasted_ref_seconds",
        MetricKind::Gauge,
        "Reference CPU seconds burned on results that were not useful",
    );
    r.sample(&n, &[], snap.wasted_ref_seconds);

    let n = r.family(
        "hcmd_trust_enabled",
        MetricKind::Gauge,
        "1 when trust-adaptive replication is on",
    );
    r.sample(&n, &[], if snap.trust.is_some() { 1.0 } else { 0.0 });

    if let Some(t) = &snap.trust {
        let n = r.family(
            "hcmd_trust_band_agents",
            MetricKind::Gauge,
            "Agents per trust band",
        );
        r.sample(&n, &[("band", "trusted")], t.trusted as f64);
        r.sample(&n, &[("band", "probation")], t.probation as f64);
        r.sample(&n, &[("band", "untrusted")], t.untrusted as f64);
        r.sample(&n, &[("band", "quarantined")], t.quarantined as f64);

        let n = r.family(
            "hcmd_trust_spot_checks",
            MetricKind::Counter,
            "Seeded spot-check recomputations by outcome",
        );
        r.sample(&n, &[("result", "passed")], t.spot_checks_passed as f64);
        r.sample(&n, &[("result", "failed")], t.spot_checks_failed as f64);

        let n = r.family(
            "hcmd_trust_denied_fetches",
            MetricKind::Counter,
            "Fetches refused because the agent is quarantined",
        );
        r.sample(&n, &[], snap.net_stats.trust_denied_fetches as f64);

        let n = r.family(
            "hcmd_trust_workunits_invalidated",
            MetricKind::Counter,
            "Validated workunits retracted after a failed spot check",
        );
        r.sample(&n, &[], snap.net_stats.workunits_invalidated as f64);

        let n = r.family(
            "hcmd_trust_agent_score",
            MetricKind::Gauge,
            "Per-agent accept ratio over the current scoring window",
        );
        for (agent, score, _band) in &snap.agents_trust {
            let agent = agent.to_string();
            r.sample(&n, &[("agent", agent.as_str())], *score);
        }
    }

    if !snap.campaigns.is_empty() {
        let n = r.family(
            "hcmd_campaign_share",
            MetricKind::Gauge,
            "Configured fair-share weight per campaign",
        );
        for c in &snap.campaigns {
            r.sample(&n, &[("campaign", c.name.as_str())], c.share);
        }
        let n = r.family(
            "hcmd_campaign_delivered_ref_seconds",
            MetricKind::Counter,
            "Validated reference CPU seconds delivered per campaign",
        );
        for c in &snap.campaigns {
            r.sample(
                &n,
                &[("campaign", c.name.as_str())],
                c.delivered_ref_seconds,
            );
        }
        let n = r.family(
            "hcmd_campaign_deficit",
            MetricKind::Gauge,
            "Fair-share deficit (positive = campaign is owed work)",
        );
        for c in &snap.campaigns {
            r.sample(&n, &[("campaign", c.name.as_str())], c.deficit);
        }
        let n = r.family(
            "hcmd_campaign_borrows_total",
            MetricKind::Counter,
            "Issues a campaign borrowed while higher-deficit peers were drained",
        );
        for c in &snap.campaigns {
            r.sample(&n, &[("campaign", c.name.as_str())], c.borrows as f64);
        }
        let n = r.family(
            "hcmd_campaign_workunits",
            MetricKind::Gauge,
            "Per-campaign workunit progression",
        );
        for c in &snap.campaigns {
            r.sample(
                &n,
                &[("campaign", c.name.as_str()), ("state", "done")],
                c.workunits_done as f64,
            );
            r.sample(
                &n,
                &[("campaign", c.name.as_str()), ("state", "total")],
                c.workunits as f64,
            );
        }
        let n = r.family(
            "hcmd_campaign_fresh_backlog",
            MetricKind::Gauge,
            "Per-campaign workunits never yet issued to any agent",
        );
        for c in &snap.campaigns {
            r.sample(&n, &[("campaign", c.name.as_str())], c.fresh_backlog as f64);
        }
        let n = r.family(
            "hcmd_campaign_done",
            MetricKind::Gauge,
            "1 once every workunit of the campaign validated",
        );
        for c in &snap.campaigns {
            r.sample(
                &n,
                &[("campaign", c.name.as_str())],
                if c.complete { 1.0 } else { 0.0 },
            );
        }
        let n = r.family(
            "hcmd_campaign_share_error",
            MetricKind::Gauge,
            "Max absolute deviation between delivered and configured shares",
        );
        r.sample(&n, &[], snap.campaign_share_error);
        let n = r.family(
            "hcmd_campaign_cross_quarantine_denials_total",
            MetricKind::Counter,
            "Fetches refused because the agent is quarantined in another campaign",
        );
        r.sample(&n, &[], snap.cross_quarantine_denials as f64);
    }

    doc.push_str(&r.finish());
    doc
}

/// §3.1 virtual full-time processors: validated reference CPU seconds
/// over elapsed campaign seconds.
fn vftp(snap: &OpsSnapshot) -> f64 {
    if snap.last_now <= 0.0 {
        0.0
    } else {
        snap.completed_ref_seconds / snap.last_now
    }
}

/// Renders the self-contained HTML status page. Inline CSS only, no
/// external assets, no script beyond the meta-refresh — the page must
/// render from an air-gapped operator console.
pub fn render_dashboard(snap: &OpsSnapshot) -> String {
    let wu = &snap.wu;
    let pct = if wu.total == 0 {
        0.0
    } else {
        100.0 * wu.done as f64 / wu.total as f64
    };
    let reissues =
        snap.stats.quorum_issues + snap.stats.timeout_reissues + snap.stats.error_reissues;
    let reissue_rate = if snap.stats.total_issues() == 0 {
        0.0
    } else {
        100.0 * reissues as f64 / snap.stats.total_issues() as f64
    };
    let qreject_rate = if snap.results_received == 0 {
        0.0
    } else {
        100.0 * snap.net_stats.quorum_rejected as f64 / snap.results_received as f64
    };

    let mut receptor_rows = String::new();
    for p in &snap.receptors {
        let rpct = if p.total == 0 {
            0.0
        } else {
            100.0 * f64::from(p.completed) / f64::from(p.total)
        };
        receptor_rows.push_str(&format!(
            "<tr><td>{}</td><td class=\"num\">{}/{}</td>\
             <td class=\"barcell\"><div class=\"bar\"><span style=\"width:{rpct:.1}%\"></span></div></td>\
             <td class=\"num\">{rpct:.1}%</td></tr>\n",
            p.receptor, p.completed, p.total
        ));
    }

    let trust_on = snap.trust.is_some();
    let trust_of = |agent: u64| -> String {
        snap.agents_trust
            .iter()
            .find(|&&(a, _, _)| a == agent)
            .map(|&(_, score, band)| format!("{band:?} ({score:.2})"))
            .unwrap_or_else(|| "&mdash;".into())
    };
    let mut agent_rows = String::new();
    for (agent, l) in &snap.agents {
        let trust_cell = if trust_on {
            format!("<td>{}</td>", trust_of(*agent))
        } else {
            String::new()
        };
        agent_rows.push_str(&format!(
            "<tr><td>{agent}</td><td class=\"num\">{}</td><td class=\"num\">{}</td>\
             <td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{:.1}s</td>{}</tr>\n",
            l.assignments, l.reports, l.accepted, l.rejected, l.last_seen_s, trust_cell
        ));
    }
    let trust_th = if trust_on { "<th>Trust</th>" } else { "" };

    let journal_tile = match &snap.journal {
        Some(j) => format!(
            "<div class=\"tile\"><div class=\"label\">Journal epoch / lag</div>\
             <div class=\"value\">{} / {}</div></div>",
            j.epoch, j.wal_appends_since_snapshot
        ),
        None => "<div class=\"tile\"><div class=\"label\">Journal</div>\
             <div class=\"value\">off</div></div>"
            .into(),
    };

    let shard_tile = match &snap.shard {
        Some(sh) => format!(
            "<div class=\"tile\"><div class=\"label\">Shard (owned / fresh)</div>\
             <div class=\"value\">{} of {} ({} / {})</div></div>",
            sh.shard_id, sh.shards, sh.owned_workunits, sh.fresh_backlog
        ),
        None => String::new(),
    };

    let trust_tile = match &snap.trust {
        Some(t) => format!(
            "<div class=\"tile\"><div class=\"label\">Trust bands T/P/U/Q</div>\
             <div class=\"value\">{} / {} / {} / {}</div></div>\
             <div class=\"tile\"><div class=\"label\">Spot checks pass/fail</div>\
             <div class=\"value\">{} / {}</div></div>",
            t.trusted,
            t.probation,
            t.untrusted,
            t.quarantined,
            t.spot_checks_passed,
            t.spot_checks_failed
        ),
        None => "<div class=\"tile\"><div class=\"label\">Trust policy</div>\
             <div class=\"value\">off</div></div>"
            .into(),
    };

    let campaign_section = if snap.campaigns.is_empty() {
        String::new()
    } else {
        let total_delivered: f64 = snap.campaigns.iter().map(|c| c.delivered_ref_seconds).sum();
        let mut rows = String::new();
        for c in &snap.campaigns {
            let got = if total_delivered > 0.0 {
                100.0 * c.delivered_ref_seconds / total_delivered
            } else {
                0.0
            };
            let cpct = if c.workunits == 0 {
                0.0
            } else {
                100.0 * c.workunits_done as f64 / c.workunits as f64
            };
            rows.push_str(&format!(
                "<tr><td>{}</td><td class=\"num\">{:.0}%</td><td class=\"num\">{got:.1}%</td>\
                 <td class=\"num\">{}</td><td class=\"num\">{}/{}</td>\
                 <td class=\"barcell\"><div class=\"bar\"><span style=\"width:{cpct:.1}%\"></span></div></td>\
                 <td class=\"num\">{}</td></tr>\n",
                c.name,
                100.0 * c.share,
                c.priority,
                c.workunits_done,
                c.workunits,
                c.borrows,
            ));
        }
        format!(
            "<h2>Campaigns (share error {err:.3})</h2>\n<table>\n\
             <thead><tr><th>Campaign</th><th>Share</th><th>Delivered</th>\
             <th>Priority</th><th>Done</th><th></th><th>Borrows</th></tr></thead>\n\
             <tbody>\n{rows}</tbody>\n</table>\n",
            err = snap.campaign_share_error,
        )
    };

    let status = if snap.campaign_complete {
        "complete"
    } else {
        "running"
    };

    format!(
        r#"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>hcmd campaign ops</title>
<style>
:root {{
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --text-primary: #0b0b0b; --text-secondary: #52514e; --muted: #898781;
  --grid: #e1e0d9; --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --track: #e1e0d9;
}}
@media (prefers-color-scheme: dark) {{
  :root {{
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --text-primary: #ffffff; --text-secondary: #c3c2b7; --muted: #898781;
    --grid: #2c2c2a; --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --track: #2c2c2a;
  }}
}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0; padding: 24px; background: var(--page); color: var(--text-primary);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}}
h1 {{ font-size: 18px; margin: 0 0 4px; }}
h2 {{ font-size: 14px; margin: 24px 0 8px; color: var(--text-secondary); font-weight: 600; }}
.sub {{ color: var(--muted); margin-bottom: 16px; }}
.tiles {{ display: flex; flex-wrap: wrap; gap: 12px; }}
.tile {{
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 8px;
  padding: 12px 16px; min-width: 150px;
}}
.tile .label {{ color: var(--text-secondary); font-size: 12px; }}
.tile .value {{ font-size: 22px; margin-top: 2px; }}
table {{
  border-collapse: collapse; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px; min-width: 420px;
}}
th, td {{ padding: 6px 12px; text-align: left; border-top: 1px solid var(--grid); }}
thead th {{ border-top: 0; color: var(--text-secondary); font-weight: 600; font-size: 12px; }}
td.num {{ text-align: right; font-variant-numeric: tabular-nums; }}
td.barcell {{ width: 220px; }}
.bar {{ background: var(--track); border-radius: 4px; height: 8px; overflow: hidden; }}
.bar span {{ display: block; height: 100%; background: var(--series-1); border-radius: 4px; }}
.progress {{ background: var(--track); border-radius: 4px; height: 12px; overflow: hidden; margin: 8px 0 16px; max-width: 720px; }}
.progress span {{ display: block; height: 100%; background: var(--series-1); border-radius: 4px; }}
</style>
</head>
<body>
<h1>hcmd campaign ops</h1>
<div class="sub">status: {status} &middot; server clock {last_now:.1}s &middot; auto-refresh 2s</div>
<div class="progress"><span style="width:{pct:.2}%"></span></div>
<div class="tiles">
  <div class="tile"><div class="label">Workunits done</div><div class="value">{done}/{total}</div></div>
  <div class="tile"><div class="label">Issued / in flight / quorum-pending</div><div class="value">{issued} / {in_flight} / {quorum_pending}</div></div>
  <div class="tile"><div class="label">Virtual full-time processors</div><div class="value">{vftp:.2}</div></div>
  <div class="tile"><div class="label">Redundancy factor</div><div class="value">{redundancy:.3}</div></div>
  <div class="tile"><div class="label">Reissue rate</div><div class="value">{reissue_rate:.1}%</div></div>
  <div class="tile"><div class="label">Quorum-reject rate</div><div class="value">{qreject_rate:.1}%</div></div>
  <div class="tile"><div class="label">Outstanding replicas</div><div class="value">{outstanding}</div></div>
  <div class="tile"><div class="label">Reissue queue</div><div class="value">{reissue_queue}</div></div>
  {journal_tile}
  {shard_tile}
  {trust_tile}
</div>
{campaign_section}<h2>Per-receptor progression</h2>
<table>
<thead><tr><th>Receptor</th><th>Done</th><th></th><th>%</th></tr></thead>
<tbody>
{receptor_rows}</tbody>
</table>
<h2>Agents ({agent_count})</h2>
<table>
<thead><tr><th>Agent</th><th>Assignments</th><th>Reports</th><th>Accepted</th><th>Rejected</th><th>Last seen</th>{trust_th}</tr></thead>
<tbody>
{agent_rows}</tbody>
</table>
</body>
</html>
"#,
        status = status,
        last_now = snap.last_now,
        pct = pct,
        done = wu.done,
        total = wu.total,
        issued = wu.issued,
        in_flight = wu.in_flight,
        quorum_pending = wu.quorum_pending,
        vftp = vftp(snap),
        redundancy = snap.redundancy_factor,
        reissue_rate = reissue_rate,
        qreject_rate = qreject_rate,
        outstanding = snap.outstanding_replicas,
        reissue_queue = snap.reissue_queue_depth,
        journal_tile = journal_tile,
        shard_tile = shard_tile,
        trust_tile = trust_tile,
        campaign_section = campaign_section,
        receptor_rows = receptor_rows,
        agent_count = snap.agents.len(),
        agent_rows = agent_rows,
        trust_th = trust_th,
    )
}

/// Minimal blocking HTTP GET against the ops endpoint — shared by the
/// integration tests, the e2e bench scraper, and the CI smoke script.
/// Returns `(status, body)`.
pub fn http_get(addr: SocketAddr, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    stream.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: ops\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no header terminator"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{AgentLedger, CampaignOps, JournalOps, NetStats, ShardOps, TrustSummary};
    use crate::trust::TrustBand;
    use gridsim::{ReceptorProgress, WuStateCounts};

    fn snap() -> OpsSnapshot {
        OpsSnapshot {
            last_now: 12.5,
            wu: WuStateCounts {
                total: 40,
                issued: 30,
                in_flight: 10,
                quorum_pending: 4,
                done: 20,
            },
            receptors: vec![
                ReceptorProgress {
                    receptor: 0,
                    total: 20,
                    completed: 12,
                },
                ReceptorProgress {
                    receptor: 1,
                    total: 20,
                    completed: 8,
                },
            ],
            stats: Default::default(),
            net_stats: NetStats {
                shard_redirects: 5,
                shard_leases_out: 2,
                shard_leases_in: 1,
                shard_wus_leased_out: 16,
                shard_wus_leased_in: 8,
                ..Default::default()
            },
            results_received: 55,
            results_useful: 44,
            redundancy_factor: 1.25,
            completed_ref_seconds: 2500.0,
            outstanding_replicas: 7,
            reissue_queue_depth: 2,
            quorum_candidate_workunits: 4,
            campaign_complete: false,
            journal: Some(JournalOps {
                epoch: 3,
                wal_appends_since_snapshot: 17,
            }),
            agents: vec![(
                9,
                AgentLedger {
                    assignments: 5,
                    reports: 4,
                    accepted: 3,
                    rejected: 1,
                    last_seen_s: 11.0,
                },
            )],
            wasted_ref_seconds: 750.0,
            trust: Some(TrustSummary {
                trusted: 3,
                probation: 2,
                untrusted: 1,
                quarantined: 1,
                ever_quarantined: 1,
                spot_checks_passed: 6,
                spot_checks_failed: 1,
            }),
            agents_trust: vec![(9, 0.96, TrustBand::Trusted)],
            shard: Some(ShardOps {
                shard_id: 1,
                shards: 2,
                owned_workunits: 22,
                fresh_backlog: 6,
            }),
            campaigns: vec![
                CampaignOps {
                    name: "prod".into(),
                    share: 0.7,
                    priority: 0,
                    delivered_ref_seconds: 1750.0,
                    deficit: 0.5,
                    borrows: 2,
                    workunits: 30,
                    workunits_done: 15,
                    fresh_backlog: 4,
                    outstanding_replicas: 5,
                    complete: false,
                },
                CampaignOps {
                    name: "pilot".into(),
                    share: 0.3,
                    priority: 1,
                    delivered_ref_seconds: 750.0,
                    deficit: -0.5,
                    borrows: 0,
                    workunits: 10,
                    workunits_done: 5,
                    fresh_backlog: 2,
                    outstanding_replicas: 2,
                    complete: false,
                },
            ],
            campaign_share_error: 0.02,
            cross_quarantine_denials: 3,
        }
    }

    #[test]
    fn metrics_document_carries_the_scheduler_families() {
        let text = render_metrics(&snap());
        assert!(text.contains("hcmd_wu_states{state=\"done\"} 20"));
        assert!(text.contains("hcmd_receptor_workunits{receptor=\"1\",state=\"done\"} 8"));
        assert!(text.contains("hcmd_redundancy_factor 1.25"));
        // 2500 ref-seconds over 12.5 clock seconds = 200 VFTP.
        assert!(text.contains("hcmd_virtual_full_time_processors 200"));
        assert!(text.contains("hcmd_journal_epoch 3"));
        assert!(text.contains("hcmd_journal_wal_appends_since_snapshot 17"));
        assert!(text.contains("hcmd_campaign_complete 0"));
        assert!(text.contains("hcmd_wasted_ref_seconds 750"));
        assert!(text.contains("hcmd_trust_enabled 1"));
        assert!(text.contains("hcmd_trust_band_agents{band=\"trusted\"} 3"));
        assert!(text.contains("hcmd_trust_band_agents{band=\"quarantined\"} 1"));
        assert!(text.contains("hcmd_trust_spot_checks{result=\"passed\"} 6"));
        assert!(text.contains("hcmd_trust_spot_checks{result=\"failed\"} 1"));
        assert!(text.contains("hcmd_trust_agent_score{agent=\"9\"} 0.96"));
        assert!(text.contains("hcmd_shard_info{shard=\"1\",shards=\"2\"} 1"));
        assert!(text.contains("hcmd_shard_owned_workunits 22"));
        assert!(text.contains("hcmd_shard_fresh_backlog 6"));
        assert!(text.contains("hcmd_shard_redirects 5"));
        assert!(text.contains("hcmd_shard_leases{direction=\"out\"} 2"));
        assert!(text.contains("hcmd_shard_leases{direction=\"in\"} 1"));
        assert!(text.contains("hcmd_shard_leased_workunits{direction=\"out\"} 16"));
        assert!(text.contains("hcmd_shard_leased_workunits{direction=\"in\"} 8"));
        assert!(text.contains("hcmd_campaign_share{campaign=\"prod\"} 0.7"));
        assert!(text.contains("hcmd_campaign_delivered_ref_seconds{campaign=\"pilot\"} 750"));
        assert!(text.contains("hcmd_campaign_borrows_total{campaign=\"prod\"} 2"));
        assert!(text.contains("hcmd_campaign_workunits{campaign=\"prod\",state=\"done\"} 15"));
        assert!(text.contains("hcmd_campaign_share_error 0.02"));
        assert!(text.contains("hcmd_campaign_cross_quarantine_denials_total 3"));
        // Every family is announced before it is sampled.
        for family in ["hcmd_wu_states", "hcmd_results_received"] {
            let type_at = text.find(&format!("# TYPE {family} ")).unwrap();
            let sample_at = text.find(&format!("\n{family}")).unwrap();
            assert!(type_at < sample_at, "{family} sampled before its header");
        }
    }

    #[test]
    fn dashboard_is_self_contained_html() {
        let html = render_dashboard(&snap());
        assert!(html.starts_with("<!doctype html>"));
        for (needle, why) in [
            ("20/40", "workunit progress tile"),
            ("12/20", "receptor 0 progression"),
            ("200.00", "VFTP tile"),
            ("3 / 17", "journal epoch / lag tile"),
            ("<td>9</td>", "agent row"),
            ("3 / 2 / 1 / 1", "trust band tile"),
            ("6 / 1", "spot check tile"),
            ("Trusted (0.96)", "agent trust column"),
            ("1 of 2 (22 / 6)", "shard tile"),
            ("<td>prod</td>", "campaign row"),
            ("Campaigns (share error 0.020)", "campaign table heading"),
            ("prefers-color-scheme: dark", "dark mode palette"),
        ] {
            assert!(html.contains(needle), "missing {why}: {needle}");
        }
        // Self-contained: no external fetches of any kind.
        for forbidden in ["http://", "https://", "src=", "href=", "@import", "url("] {
            assert!(
                !html.contains(forbidden),
                "dashboard references an external asset via {forbidden}"
            );
        }
    }

    #[test]
    fn request_lines_parse_and_reject_correctly() {
        assert_eq!(
            parse_request_line("GET /metrics HTTP/1.1\r\n"),
            Ok(("GET", "/metrics"))
        );
        assert_eq!(
            parse_request_line("GET /metrics?x=1 HTTP/1.1\r\n"),
            Ok(("GET", "/metrics"))
        );
        assert_eq!(parse_request_line("POST / HTTP/1.1\r\n"), Ok(("POST", "/")));
        assert_eq!(parse_request_line("GET /metrics\r\n"), Err(400));
        assert_eq!(parse_request_line(""), Err(400));
        assert_eq!(parse_request_line("GET / SMTP/1.0\r\n"), Err(400));
        let long = format!("GET /{} HTTP/1.1\r\n", "a".repeat(2 * MAX_REQUEST_LINE));
        assert_eq!(parse_request_line(&long), Err(414u16));
    }
}

//! Readiness polling without a dependency: a hand-rolled shim over
//! `epoll(7)` (Linux) with a portable `poll(2)` fallback.
//!
//! The workspace vendors no libc crate, but every Rust binary on a Unix
//! platform already links the system C library through `std` — so the
//! handful of syscall wrappers the event loop needs are declared here
//! directly as `extern "C"` and resolved by the usual dynamic linker.
//! Only the symbols actually used are declared, with the struct layouts
//! fixed by the kernel/libc ABI (note `epoll_event` is packed on
//! x86-64 — a historic kernel ABI quirk).
//!
//! [`Poller`] is the tiny abstraction the server and the multiplexed
//! bench driver share: register/modify/remove a file descriptor's read
//! and write interest, then [`Poller::wait`] for events or a timeout.
//! Readiness is level-triggered on both backends, which keeps the
//! consumers simple: always drain reads to `WouldBlock`, only register
//! write interest while bytes are actually queued.
//!
//! The `poll(2)` backend rebuilds its `pollfd` array on every wait —
//! O(n) per call, fine as a portability fallback and for the small fd
//! sets the ops endpoint watches, while the epoll backend carries the
//! 10k-connection loopback scenario.

use std::collections::HashMap;
use std::io;
use std::os::raw::{c_int, c_short, c_ulong};
use std::time::Duration;

/// One readiness event: the fd and what it is ready for. `hangup`
/// covers POLLERR/POLLHUP — the consumer should read (to observe the
/// EOF or error) and close.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The ready file descriptor.
    pub fd: i32,
    /// Readable (or a pending accept on a listener).
    pub readable: bool,
    /// Writable without blocking.
    pub writable: bool,
    /// Peer hangup or socket error.
    pub hangup: bool,
}

// ---- poll(2): portable fallback --------------------------------------

#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: c_int,
    events: c_short,
    revents: c_short,
}

const POLLIN: c_short = 0x001;
const POLLOUT: c_short = 0x004;
const POLLERR: c_short = 0x008;
const POLLHUP: c_short = 0x010;

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

// ---- epoll(7): Linux -------------------------------------------------

#[cfg(target_os = "linux")]
mod epoll_sys {
    use std::os::raw::c_int;

    // The kernel ABI packs epoll_event on x86-64 only.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            max: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn close(fd: c_int) -> c_int;
    }
}

/// Readiness interest + wait, over epoll (Linux) or poll (fallback).
pub enum Poller {
    /// The epoll backend (Linux only).
    #[cfg(target_os = "linux")]
    Epoll(EpollPoller),
    /// The portable poll(2) backend.
    Poll(PollPoller),
}

impl Poller {
    /// The platform's best backend: epoll on Linux, poll elsewhere.
    pub fn new() -> io::Result<Self> {
        #[cfg(target_os = "linux")]
        {
            EpollPoller::new().map(Poller::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Ok(Self::poll_fallback())
        }
    }

    /// The poll(2) backend, explicitly — exercised by tests on every
    /// platform so the fallback cannot rot.
    pub fn poll_fallback() -> Self {
        Poller::Poll(PollPoller::default())
    }

    /// Starts watching `fd` for readability and/or writability.
    pub fn register(&mut self, fd: i32, readable: bool, writable: bool) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(epoll_sys::EPOLL_CTL_ADD, fd, readable, writable),
            Poller::Poll(p) => {
                p.interest.insert(fd, (readable, writable));
                Ok(())
            }
        }
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn reregister(&mut self, fd: i32, readable: bool, writable: bool) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(epoll_sys::EPOLL_CTL_MOD, fd, readable, writable),
            Poller::Poll(p) => {
                p.interest.insert(fd, (readable, writable));
                Ok(())
            }
        }
    }

    /// Stops watching `fd`. Call before closing the descriptor.
    pub fn deregister(&mut self, fd: i32) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.ctl(epoll_sys::EPOLL_CTL_DEL, fd, false, false),
            Poller::Poll(p) => {
                p.interest.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one watched fd is ready or the timeout
    /// elapses (`None` = wait forever), filling `events`. A signal
    /// interruption returns cleanly with no events.
    pub fn wait(&mut self, timeout: Option<Duration>, events: &mut Vec<Event>) -> io::Result<()> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            // poll/epoll take i32 milliseconds; round up so a 0.4 ms
            // deadline does not busy-spin at timeout 0.
            Some(t) => t
                .as_millis()
                .min(i32::MAX as u128)
                .try_into()
                .map(|ms: i32| if ms == 0 && !t.is_zero() { 1 } else { ms })
                .unwrap(),
            None => -1,
        };
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(timeout_ms, events),
            Poller::Poll(p) => p.wait(timeout_ms, events),
        }
    }
}

/// The epoll backend. Owns the epoll fd; closed on drop.
#[cfg(target_os = "linux")]
pub struct EpollPoller {
    epfd: i32,
    buf: Vec<epoll_sys::EpollEvent>,
}

#[cfg(target_os = "linux")]
impl EpollPoller {
    fn new() -> io::Result<Self> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { epoll_sys::epoll_create1(epoll_sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Self {
            epfd,
            buf: vec![epoll_sys::EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&mut self, op: c_int, fd: i32, readable: bool, writable: bool) -> io::Result<()> {
        let mut ev = epoll_sys::EpollEvent {
            events: (if readable { epoll_sys::EPOLLIN } else { 0 })
                | (if writable { epoll_sys::EPOLLOUT } else { 0 }),
            data: fd as u64,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        let rc = unsafe { epoll_sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&mut self, timeout_ms: c_int, events: &mut Vec<Event>) -> io::Result<()> {
        // SAFETY: `buf` is a live, correctly-sized array for the call.
        let n = unsafe {
            epoll_sys::epoll_wait(
                self.epfd,
                self.buf.as_mut_ptr(),
                self.buf.len() as c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in &self.buf[..n as usize] {
            let bits = ev.events;
            events.push(Event {
                fd: ev.data as i32,
                readable: bits & epoll_sys::EPOLLIN != 0,
                writable: bits & epoll_sys::EPOLLOUT != 0,
                hangup: bits & (epoll_sys::EPOLLERR | epoll_sys::EPOLLHUP) != 0,
            });
        }
        Ok(())
    }
}

#[cfg(target_os = "linux")]
impl Drop for EpollPoller {
    fn drop(&mut self) {
        // SAFETY: closing the epoll fd we own.
        unsafe { epoll_sys::close(self.epfd) };
    }
}

/// The poll(2) backend: an interest map rebuilt into a `pollfd` array
/// per wait.
#[derive(Default)]
pub struct PollPoller {
    interest: HashMap<i32, (bool, bool)>,
    buf: Vec<PollFd>,
}

impl PollPoller {
    fn wait(&mut self, timeout_ms: c_int, events: &mut Vec<Event>) -> io::Result<()> {
        self.buf.clear();
        for (&fd, &(readable, writable)) in &self.interest {
            self.buf.push(PollFd {
                fd,
                events: (if readable { POLLIN } else { 0 }) | (if writable { POLLOUT } else { 0 }),
                revents: 0,
            });
        }
        if self.buf.is_empty() {
            // Nothing to watch: sleep out the timeout like poll would.
            if timeout_ms > 0 {
                std::thread::sleep(Duration::from_millis(timeout_ms as u64));
            }
            return Ok(());
        }
        // SAFETY: `buf` is a live pollfd array of the stated length.
        let n = unsafe { poll(self.buf.as_mut_ptr(), self.buf.len() as c_ulong, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for pfd in &self.buf {
            if pfd.revents != 0 {
                events.push(Event {
                    fd: pfd.fd,
                    readable: pfd.revents & POLLIN != 0,
                    writable: pfd.revents & POLLOUT != 0,
                    hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                });
            }
        }
        Ok(())
    }
}

// ---- RLIMIT_NOFILE ---------------------------------------------------

#[repr(C)]
struct RLimit {
    cur: u64,
    max: u64,
}

#[cfg(target_os = "linux")]
const RLIMIT_NOFILE: c_int = 7;
#[cfg(not(target_os = "linux"))]
const RLIMIT_NOFILE: c_int = 8;

extern "C" {
    fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
    fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    fn nice(inc: c_int) -> c_int;
    fn listen(fd: c_int, backlog: c_int) -> c_int;
}

/// Re-issues `listen(2)` on an already-listening socket with a larger
/// backlog (clamped by the kernel to `net.core.somaxconn`).
/// `std::net::TcpListener` hard-codes a backlog of 128, which a
/// thousands-of-agents reconnect storm overflows — dropped SYNs then
/// cost each dialer a full 1 s retransmit timer. Best-effort: returns
/// whether the call succeeded.
pub fn widen_listen_backlog(fd: i32, backlog: i32) -> bool {
    // SAFETY: plain syscall on a caller-owned listening socket.
    unsafe { listen(fd, backlog) == 0 }
}

/// Drops the calling thread to the lowest scheduling priority
/// (best-effort). On Linux, `nice(2)` adjusts the *calling thread's*
/// nice value, not the whole process — exactly what a background
/// compute thread wants so it cannot starve an event loop sharing the
/// core. Benign if it fails (e.g. already at the floor).
pub fn deprioritize_current_thread() {
    // SAFETY: plain syscall wrapper, no pointers.
    unsafe {
        nice(19);
    }
}

/// Best-effort raise of the open-files soft limit toward `want`
/// (clamped to the hard limit). Returns the soft limit now in force —
/// a 10k-agent loopback run needs both socket ends plus slack, and the
/// usual 1024 default would stop it cold.
pub fn raise_nofile_limit(want: u64) -> u64 {
    let mut lim = RLimit { cur: 0, max: 0 };
    // SAFETY: `lim` is a live out-param for both calls.
    unsafe {
        if getrlimit(RLIMIT_NOFILE, &mut lim) != 0 {
            return 0;
        }
        if lim.cur >= want {
            return lim.cur;
        }
        let raised = RLimit {
            cur: want.min(lim.max),
            max: lim.max,
        };
        if setrlimit(RLIMIT_NOFILE, &raised) == 0 {
            raised.cur
        } else {
            lim.cur
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::time::Instant;

    fn wakes_on_readable(mut poller: Poller) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        let fd = rx.as_raw_fd();
        poller.register(fd, true, false).unwrap();

        // Quiet socket: the wait times out with no events.
        let mut events = Vec::new();
        poller
            .wait(Some(Duration::from_millis(20)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "spurious event on an idle socket");

        // One byte lands: the wait returns promptly, well before the
        // generous timeout, flagging exactly that fd readable.
        tx.write_all(b"x").unwrap();
        tx.flush().unwrap();
        let t0 = Instant::now();
        poller
            .wait(Some(Duration::from_secs(5)), &mut events)
            .unwrap();
        assert!(t0.elapsed() < Duration::from_secs(1), "wait did not wake");
        assert!(events.iter().any(|e| e.fd == fd && e.readable));

        poller.deregister(fd).unwrap();
        poller
            .wait(Some(Duration::from_millis(10)), &mut events)
            .unwrap();
        assert!(events.is_empty(), "deregistered fd still reported");
    }

    #[test]
    fn default_backend_wakes_on_readable() {
        wakes_on_readable(Poller::new().unwrap());
    }

    #[test]
    fn poll_fallback_wakes_on_readable() {
        wakes_on_readable(Poller::poll_fallback());
    }

    #[test]
    fn write_interest_reports_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let tx = TcpStream::connect(addr).unwrap();
        tx.set_nonblocking(true).unwrap();
        let fd = tx.as_raw_fd();
        for mut poller in [Poller::new().unwrap(), Poller::poll_fallback()] {
            poller.register(fd, false, true).unwrap();
            let mut events = Vec::new();
            poller
                .wait(Some(Duration::from_secs(5)), &mut events)
                .unwrap();
            assert!(
                events.iter().any(|e| e.fd == fd && e.writable),
                "fresh socket must be writable"
            );
            poller.deregister(fd).unwrap();
        }
    }

    #[test]
    fn nofile_limit_reports_a_sane_value() {
        let now = raise_nofile_limit(256);
        assert!(now >= 256, "soft limit {now} below any sane default");
    }
}

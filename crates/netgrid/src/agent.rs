//! The volunteer agent: fetch, dock, checkpoint, report.
//!
//! One agent models one volunteer machine. Its session loop mirrors the
//! BOINC client the paper's volunteers ran: connect, learn the campaign
//! from `HelloAck`, then cycle *request work → compute → report* until
//! the server says the campaign is complete. The docking is the real
//! maxdo kernel; with `threads > 1` each starting position's 21
//! orientation couples run on the vendored rayon pool
//! (order-preserving, so the payload is byte-identical to a
//! single-threaded volunteer's — a prerequisite for byte-level quorum).
//!
//! Progress is checkpointed *between starting positions* (§4.3,
//! [`DockingCheckpoint`]): when fault injection kills the connection
//! mid-workunit, the replica is abandoned exactly the way a powered-off
//! volunteer PC abandons work — the server's deadline sweep reissues it,
//! and this agent starts the next assignment from scratch.

use crate::campaign::NetCampaign;
use crate::faults::{FaultAction, FaultDice, FaultProfile};
use crate::protocol::{read_message, write_message_with, Codec, Message};
use maxdo::{DockingCheckpoint, DockingOutput};
use std::io;
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Agent configuration.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Stable agent identity (also salts the fault stream).
    pub agent: u64,
    /// Docking threads (1 = sequential).
    pub threads: usize,
    /// Fault injection profile.
    pub profile: FaultProfile,
    /// Run seed shared by every agent of a campaign.
    pub seed: u64,
    /// Abandon the session (no report, no `Bye`) after this many
    /// assignments — the "volunteer switched the PC off" test hook.
    pub die_after: Option<u32>,
    /// Give up after this many consecutive failed connection attempts.
    pub max_connect_attempts: u32,
    /// Wire codec for outgoing frames. On a failed handshake the agent
    /// steps down one protocol level per session (v4 → v3 → v2 → JSON,
    /// which every server release understands), so the v4 default is
    /// safe against older servers that close on an unknown version byte.
    pub codec: Codec,
    /// Campaign attachments announced in the v4 handshake: names of the
    /// hosted campaigns this volunteer works for. Empty means the
    /// default campaign; the single entry `"*"` attaches to all.
    pub campaigns: Vec<String>,
}

impl AgentConfig {
    /// A reliable single-threaded volunteer.
    pub fn new(addr: impl Into<String>, agent: u64) -> Self {
        Self {
            addr: addr.into(),
            agent,
            threads: 1,
            profile: FaultProfile::none(),
            seed: 0,
            die_after: None,
            max_connect_attempts: 50,
            codec: Codec::BinaryV4,
            campaigns: Vec::new(),
        }
    }
}

/// What one agent did over its lifetime.
#[derive(Debug, Clone, Default)]
pub struct AgentReport {
    /// Assignments received.
    pub assignments: u64,
    /// Results reported (honest + corrupted + stalled).
    pub reported: u64,
    /// Reports the server accepted.
    pub accepted: u64,
    /// Injected disconnects.
    pub disconnect_faults: u64,
    /// Injected stalls.
    pub stall_faults: u64,
    /// Injected corruptions.
    pub corrupt_faults: u64,
    /// Round-trip latency of each `RequestWork`, milliseconds.
    pub request_latencies_ms: Vec<f64>,
    /// Whether the agent saw the campaign complete (vs. dying early).
    pub saw_completion: bool,
    /// Cross-shard redirects followed (v3 sharded servers only).
    pub redirects_followed: u64,
}

/// Runs one agent until the campaign completes (or it dies on purpose).
pub fn run_agent(config: AgentConfig) -> io::Result<AgentReport> {
    let mut report = AgentReport::default();
    let mut dice = FaultDice::new(config.seed, config.agent, config.profile);
    // Campaigns the agent is attached to, indexed by the wire campaign
    // id from `Assignment::campaign`. A single-campaign (or pre-v4)
    // server has exactly one entry, index 0.
    let mut roster: Vec<NetCampaign> = Vec::new();
    let mut connect_failures = 0u32;
    let mut codec = config.codec;
    // Where the next session dials. A sharded server may answer a
    // RequestWork with a Redirect to a loaded peer; the agent follows
    // at most ONE redirect per ask (`bounced` below), so two drained
    // shards pointing at each other cannot trap an agent in a loop.
    let mut addr = config.addr.clone();
    let mut bounced = false;

    'session: loop {
        let mut stream = match TcpStream::connect(&addr) {
            Ok(s) => {
                connect_failures = 0;
                s
            }
            Err(e) => {
                // A dead redirect target is not a dead campaign: fall
                // back to the home shard before giving up.
                if addr != config.addr {
                    addr = config.addr.clone();
                    bounced = false;
                    continue 'session;
                }
                connect_failures += 1;
                if connect_failures >= config.max_connect_attempts {
                    // The server is gone — most likely the campaign
                    // finished while this agent was between sessions.
                    // Any received assignment counts as progress: an
                    // agent whose every assignment drew a disconnect
                    // fault has reported nothing yet still ran exactly
                    // as configured, so its report is a result, not an
                    // error.
                    return if report.saw_completion || report.assignments > 0 {
                        Ok(report)
                    } else {
                        Err(e)
                    };
                }
                std::thread::sleep(Duration::from_millis(50));
                continue 'session;
            }
        };
        stream.set_nodelay(true)?;

        write_message_with(
            &mut stream,
            &Message::Hello {
                agent: config.agent,
                threads: config.threads as u32,
                campaigns: config.campaigns.clone(),
            },
            codec,
        )?;
        let deadline_seconds = match read_message(&mut stream) {
            Ok(Some(Message::HelloAck {
                campaign: params,
                deadline_seconds,
                campaigns,
                ..
            })) => {
                if roster.is_empty() {
                    roster = if campaigns.is_empty() {
                        vec![NetCampaign::build(params)]
                    } else {
                        campaigns
                            .iter()
                            .map(|(_, p)| NetCampaign::build(*p))
                            .collect()
                    };
                }
                deadline_seconds
            }
            Ok(Some(Message::Busy { retry_after_ms })) => {
                std::thread::sleep(Duration::from_millis(retry_after_ms.min(2_000)));
                continue 'session;
            }
            Ok(_) | Err(_) => {
                // A redirect target that hangs up mid-handshake is not
                // an older server — it is a peer that finished its
                // drain and closed between gossip ticks. Fall home on
                // the same codec; stepping down here would wrongly
                // downgrade the whole session against the home shard.
                if addr != config.addr {
                    addr = config.addr.clone();
                    bounced = false;
                    continue 'session;
                }
                // An older server drops the connection on a version
                // byte it does not know: step down one protocol level
                // per failed session (v4 → v3 → v2 → JSON, which every
                // server release understands).
                codec = match codec {
                    Codec::BinaryV4 => Codec::BinaryV3,
                    Codec::BinaryV3 => Codec::Binary,
                    Codec::Binary => Codec::Json,
                    Codec::Json => Codec::Json,
                };
                std::thread::sleep(Duration::from_millis(50));
                continue 'session;
            }
        };
        loop {
            let asked = Instant::now();
            if write_message_with(&mut stream, &Message::RequestWork, codec).is_err() {
                continue 'session;
            }
            let reply = match read_message(&mut stream) {
                Ok(Some(m)) => m,
                _ => continue 'session,
            };
            report
                .request_latencies_ms
                .push(asked.elapsed().as_secs_f64() * 1e3);
            match reply {
                Message::NoWork {
                    campaign_complete,
                    retry_after_ms,
                } => {
                    bounced = false;
                    if campaign_complete {
                        report.saw_completion = true;
                        let _ = write_message_with(&mut stream, &Message::Bye, codec);
                        return Ok(report);
                    }
                    // A drained redirect target with the campaign still
                    // open is the home shard's problem, not this peer's:
                    // fall home rather than camping on the peer — home
                    // tracks global completion and can re-steer.
                    if addr != config.addr {
                        let _ = write_message_with(&mut stream, &Message::Bye, codec);
                        addr = config.addr.clone();
                        continue 'session;
                    }
                    std::thread::sleep(Duration::from_millis(retry_after_ms.min(2_000)));
                }
                Message::Busy { retry_after_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.min(2_000)));
                    continue 'session;
                }
                Message::Redirect { addr: peer, .. } => {
                    if bounced || peer == addr {
                        // Already followed one redirect for this ask
                        // (or the server pointed at itself): back off
                        // in place instead of chasing pointers around
                        // a ring of drained shards.
                        bounced = false;
                        std::thread::sleep(Duration::from_millis(100));
                    } else {
                        report.redirects_followed += 1;
                        bounced = true;
                        addr = peer;
                        let _ = write_message_with(&mut stream, &Message::Bye, codec);
                        continue 'session;
                    }
                }
                Message::Assignment {
                    replica,
                    workunit,
                    isep_start,
                    positions,
                    deadline_seconds: wu_deadline,
                    campaign: campaign_idx,
                    ..
                } => {
                    // The roster entry this assignment docks against —
                    // index 0 unless a v4 multi-campaign server said
                    // otherwise. An index the handshake never announced
                    // is a server bug; drop the session.
                    let Some(campaign) = roster.get(usize::from(campaign_idx)) else {
                        continue 'session;
                    };
                    bounced = false;
                    report.assignments += 1;
                    if config
                        .die_after
                        .is_some_and(|n| report.assignments >= u64::from(n))
                    {
                        // Vanish mid-workunit: no report, no Bye.
                        return Ok(report);
                    }
                    let action = dice.draw();
                    if action == FaultAction::Disconnect {
                        report.disconnect_faults += 1;
                        // Drop the TCP stream on the floor; the replica
                        // ages out and the server reissues it.
                        std::thread::sleep(Duration::from_millis(20));
                        continue 'session;
                    }
                    let mut output =
                        compute_workunit(campaign, workunit, isep_start, positions, config.threads);
                    match action {
                        FaultAction::Stall => {
                            report.stall_faults += 1;
                            let past_deadline =
                                Duration::from_secs_f64(wu_deadline.max(deadline_seconds) + 0.3);
                            std::thread::sleep(past_deadline);
                        }
                        FaultAction::Corrupt => {
                            report.corrupt_faults += 1;
                            dice.corrupt(&mut output);
                        }
                        FaultAction::None | FaultAction::Disconnect => {}
                    }
                    if write_message_with(
                        &mut stream,
                        &Message::ResultReport {
                            replica,
                            workunit,
                            campaign: campaign_idx,
                            output,
                        },
                        codec,
                    )
                    .is_err()
                    {
                        continue 'session;
                    }
                    report.reported += 1;
                    match read_message(&mut stream) {
                        Ok(Some(Message::ResultAck {
                            accepted,
                            campaign_complete,
                            ..
                        })) => {
                            if accepted {
                                report.accepted += 1;
                            }
                            if campaign_complete {
                                report.saw_completion = true;
                                let _ = write_message_with(&mut stream, &Message::Bye, codec);
                                return Ok(report);
                            }
                        }
                        _ => continue 'session,
                    }
                }
                _ => continue 'session,
            }
        }
    }
}

/// Computes one workunit through the §4.3 checkpoint, position by
/// position — on `threads > 1`, each position's orientation fan runs on
/// the shared rayon pool with a thread-local cap.
fn compute_workunit(
    campaign: &NetCampaign,
    workunit: u32,
    isep_start: u32,
    positions: u32,
    threads: usize,
) -> DockingOutput {
    let spec = campaign.spec(workunit);
    debug_assert_eq!((spec.isep_start, spec.positions), (isep_start, positions));
    let engine = campaign.engine(spec);
    let mut cp = DockingCheckpoint::new(isep_start, isep_start + positions - 1);
    while !cp.is_complete() {
        let next = cp.next_isep;
        let out = if threads > 1 {
            rayon::with_threads(threads, || engine.dock_position_parallel(next))
        } else {
            engine.dock_position(next)
        };
        cp.commit_position(out);
    }
    DockingOutput {
        rows: cp.rows,
        evaluations: cp.evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{write_message, CampaignParams, PROTOCOL_VERSION};

    /// Regression: an agent whose *every* assignment drew a disconnect
    /// fault has `reported == 0` when the server exits. That agent ran
    /// exactly as configured, so giving up on a vanished server must be
    /// `Ok(report)` — it used to demand `reported > 0` and returned the
    /// connect error instead.
    #[test]
    fn give_up_with_assignments_but_no_reports_is_ok() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut s, _) = listener.accept().unwrap();
            // Close the listener immediately: once the faulty agent
            // drops this connection, every reconnect is refused.
            drop(listener);
            let campaign = NetCampaign::build(CampaignParams::tiny());
            loop {
                let reply = match read_message(&mut s) {
                    Ok(Some(Message::Hello { .. })) => Message::HelloAck {
                        protocol: PROTOCOL_VERSION,
                        campaign: CampaignParams::tiny(),
                        deadline_seconds: 5.0,
                        campaigns: Vec::new(),
                    },
                    Ok(Some(Message::RequestWork)) => {
                        let spec = campaign.spec(0);
                        Message::Assignment {
                            replica: 0,
                            workunit: 0,
                            receptor: spec.receptor.0,
                            ligand: spec.ligand.0,
                            isep_start: spec.isep_start,
                            positions: spec.positions,
                            deadline_seconds: 5.0,
                            campaign: 0,
                        }
                    }
                    _ => return, // agent dropped the connection
                };
                if write_message(&mut s, &reply).is_err() {
                    return;
                }
            }
        });

        let report = run_agent(AgentConfig {
            profile: FaultProfile {
                disconnect: 1.0,
                stall: 0.0,
                corrupt: 0.0,
            },
            max_connect_attempts: 3,
            ..AgentConfig::new(addr.to_string(), 9)
        })
        .expect("an agent that received assignments made progress");
        assert!(report.assignments >= 1, "{report:?}");
        assert_eq!(report.reported, 0, "every assignment disconnected");
        assert_eq!(report.disconnect_faults, report.assignments);
        assert!(!report.saw_completion);
        server.join().unwrap();
    }

    /// Two drained shards pointing at each other must not trap an
    /// agent: the first Redirect is followed, the second (on the next
    /// ask, back toward shard A) is treated as a backoff. The agent
    /// therefore asks shard A exactly once.
    #[test]
    fn redirect_is_followed_at_most_once_per_ask() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let a = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let b = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let a_addr = a.local_addr().unwrap().to_string();
        let b_addr = b.local_addr().unwrap().to_string();

        let a_asks = Arc::new(AtomicU64::new(0));
        let a_count = a_asks.clone();
        let b_for_a = b_addr.clone();
        let shard_a = std::thread::spawn(move || {
            let (mut s, _) = a.accept().unwrap();
            drop(a);
            loop {
                let reply = match read_message(&mut s) {
                    Ok(Some(Message::Hello { .. })) => Message::HelloAck {
                        protocol: PROTOCOL_VERSION,
                        campaign: CampaignParams::tiny(),
                        deadline_seconds: 5.0,
                        campaigns: Vec::new(),
                    },
                    Ok(Some(Message::RequestWork)) => {
                        a_count.fetch_add(1, Ordering::SeqCst);
                        Message::Redirect {
                            shard: 1,
                            addr: b_for_a.clone(),
                        }
                    }
                    _ => return,
                };
                if write_message(&mut s, &reply).is_err() {
                    return;
                }
            }
        });
        let a_for_b = a_addr.clone();
        let shard_b = std::thread::spawn(move || {
            let (mut s, _) = b.accept().unwrap();
            drop(b);
            let mut asks = 0u32;
            loop {
                let reply = match read_message(&mut s) {
                    Ok(Some(Message::Hello { .. })) => Message::HelloAck {
                        protocol: PROTOCOL_VERSION,
                        campaign: CampaignParams::tiny(),
                        deadline_seconds: 5.0,
                        campaigns: Vec::new(),
                    },
                    Ok(Some(Message::RequestWork)) => {
                        asks += 1;
                        if asks == 1 {
                            // Point straight back at shard A: if the
                            // agent chased it, A would see a second ask.
                            Message::Redirect {
                                shard: 0,
                                addr: a_for_b.clone(),
                            }
                        } else {
                            Message::NoWork {
                                campaign_complete: true,
                                retry_after_ms: 0,
                            }
                        }
                    }
                    _ => return,
                };
                if write_message(&mut s, &reply).is_err() {
                    return;
                }
            }
        });

        let report = run_agent(AgentConfig::new(a_addr, 7)).unwrap();
        assert!(report.saw_completion);
        assert_eq!(report.redirects_followed, 1, "one bounce per ask");
        assert_eq!(
            a_asks.load(Ordering::SeqCst),
            1,
            "agent chased the redirect loop back to shard A"
        );
        shard_a.join().unwrap();
        shard_b.join().unwrap();
    }

    /// A redirect target that completed and shut down between gossip
    /// ticks hangs up on the agent's Hello. The agent must fall home
    /// and terminate there — on its original codec, not stepped down —
    /// rather than re-asking the dead peer.
    #[test]
    fn dead_redirect_target_falls_home_without_codec_downgrade() {
        use crate::protocol::HEADER_BYTES;
        use std::io::Read;

        let home = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let home_addr = home.local_addr().unwrap().to_string();
        let peer_addr = peer.local_addr().unwrap().to_string();

        let peer_thread = std::thread::spawn(move || {
            // The "completed and draining" peer: accept, read the
            // Hello, hang up without a reply.
            let (mut s, _) = peer.accept().unwrap();
            drop(peer);
            let _ = read_message(&mut s);
        });

        let home_thread = std::thread::spawn(move || {
            // Session 1: hand out a redirect to the doomed peer.
            {
                let (mut s, _) = home.accept().unwrap();
                loop {
                    let reply = match read_message(&mut s) {
                        Ok(Some(Message::Hello { .. })) => Message::HelloAck {
                            protocol: PROTOCOL_VERSION,
                            campaign: CampaignParams::tiny(),
                            deadline_seconds: 5.0,
                            campaigns: Vec::new(),
                        },
                        Ok(Some(Message::RequestWork)) => Message::Redirect {
                            shard: 1,
                            addr: peer_addr.clone(),
                        },
                        _ => break, // Bye / disconnect
                    };
                    if write_message(&mut s, &reply).is_err() {
                        break;
                    }
                }
            }
            // Session 2: the agent is back. Read its Hello frame raw so
            // the version byte proves the codec was not stepped down by
            // the peer's hang-up.
            let (mut s, _) = home.accept().unwrap();
            let mut hdr = [0u8; HEADER_BYTES];
            s.read_exact(&mut hdr).unwrap();
            let len = u32::from_le_bytes(hdr[5..9].try_into().unwrap()) as usize;
            let mut payload = vec![0u8; len];
            s.read_exact(&mut payload).unwrap();
            assert_eq!(
                hdr[4], PROTOCOL_VERSION,
                "falling home from a dead peer must not downgrade the codec"
            );
            write_message(
                &mut s,
                &Message::HelloAck {
                    protocol: PROTOCOL_VERSION,
                    campaign: CampaignParams::tiny(),
                    deadline_seconds: 5.0,
                    campaigns: Vec::new(),
                },
            )
            .unwrap();
            assert!(matches!(
                read_message(&mut s),
                Ok(Some(Message::RequestWork))
            ));
            write_message(
                &mut s,
                &Message::NoWork {
                    campaign_complete: true,
                    retry_after_ms: 0,
                },
            )
            .unwrap();
            let _ = read_message(&mut s); // Bye
        });

        let report = run_agent(AgentConfig::new(home_addr, 11)).unwrap();
        assert!(report.saw_completion, "{report:?}");
        assert_eq!(report.redirects_followed, 1);
        home_thread.join().unwrap();
        peer_thread.join().unwrap();
    }

    /// A redirect target that is merely *drained* (NoWork, campaign
    /// still open) must not hold the agent either: one NoWork from the
    /// peer sends the agent home, where it learns the campaign is done.
    #[test]
    fn drained_redirect_target_sends_the_agent_home() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        let home = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let home_addr = home.local_addr().unwrap().to_string();
        let peer_addr = peer.local_addr().unwrap().to_string();

        let peer_asks = Arc::new(AtomicU64::new(0));
        let peer_count = peer_asks.clone();
        let peer_thread = std::thread::spawn(move || {
            let (mut s, _) = peer.accept().unwrap();
            drop(peer);
            loop {
                let reply = match read_message(&mut s) {
                    Ok(Some(Message::Hello { .. })) => Message::HelloAck {
                        protocol: PROTOCOL_VERSION,
                        campaign: CampaignParams::tiny(),
                        deadline_seconds: 5.0,
                        campaigns: Vec::new(),
                    },
                    Ok(Some(Message::RequestWork)) => {
                        peer_count.fetch_add(1, Ordering::SeqCst);
                        Message::NoWork {
                            campaign_complete: false,
                            retry_after_ms: 5,
                        }
                    }
                    _ => return, // Bye: the agent went home
                };
                if write_message(&mut s, &reply).is_err() {
                    return;
                }
            }
        });

        let home_thread = std::thread::spawn(move || {
            // Session 1: redirect to the drained peer.
            {
                let (mut s, _) = home.accept().unwrap();
                loop {
                    let reply = match read_message(&mut s) {
                        Ok(Some(Message::Hello { .. })) => Message::HelloAck {
                            protocol: PROTOCOL_VERSION,
                            campaign: CampaignParams::tiny(),
                            deadline_seconds: 5.0,
                            campaigns: Vec::new(),
                        },
                        Ok(Some(Message::RequestWork)) => Message::Redirect {
                            shard: 1,
                            addr: peer_addr.clone(),
                        },
                        _ => break,
                    };
                    if write_message(&mut s, &reply).is_err() {
                        break;
                    }
                }
            }
            // Session 2: home finishes the agent off.
            let (mut s, _) = home.accept().unwrap();
            loop {
                let reply = match read_message(&mut s) {
                    Ok(Some(Message::Hello { .. })) => Message::HelloAck {
                        protocol: PROTOCOL_VERSION,
                        campaign: CampaignParams::tiny(),
                        deadline_seconds: 5.0,
                        campaigns: Vec::new(),
                    },
                    Ok(Some(Message::RequestWork)) => Message::NoWork {
                        campaign_complete: true,
                        retry_after_ms: 0,
                    },
                    _ => return,
                };
                if write_message(&mut s, &reply).is_err() {
                    return;
                }
            }
        });

        let report = run_agent(AgentConfig::new(home_addr, 12)).unwrap();
        assert!(report.saw_completion, "{report:?}");
        assert_eq!(report.redirects_followed, 1);
        assert_eq!(
            peer_asks.load(Ordering::SeqCst),
            1,
            "the agent must ask the drained peer exactly once, then go home"
        );
        home_thread.join().unwrap();
        peer_thread.join().unwrap();
    }

    #[test]
    fn checkpointed_compute_matches_direct_dock_range() {
        let campaign = NetCampaign::build(CampaignParams::tiny());
        let spec = campaign.spec(0);
        let direct = campaign.compute(spec);
        let via_checkpoint = compute_workunit(&campaign, 0, spec.isep_start, spec.positions, 1);
        assert_eq!(via_checkpoint, direct);
        let parallel = compute_workunit(&campaign, 0, spec.isep_start, spec.positions, 4);
        assert_eq!(parallel, direct, "thread count must not change bytes");
    }
}

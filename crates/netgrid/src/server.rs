//! The wire-level task server.
//!
//! A small, dependency-free TCP daemon: a non-blocking accept loop, one
//! handler thread per connection, and a deadline-sweeper thread, all
//! sharing one mutex-guarded [`GridState`]. The scheduling itself never
//! left `gridsim::SchedulerCore` — this module only moves frames and
//! maps wall-clock time onto the core's [`SimTime`] axis (seconds since
//! server start, so a wall run of a few minutes sits firmly inside day
//! 0's quorum-compare era).
//!
//! Concurrency model: the per-connection handler holds the state lock
//! only across one scheduler call (`fetch` / `report`), never across a
//! socket operation, so a stalled volunteer cannot wedge the grid. The
//! docking work itself happens on the *agents*; the server's handlers
//! are I/O-bound and a plain mutex is far from contention at the
//! dozens-of-volunteers scale the loopback campaigns run at.

use crate::campaign::NetCampaign;
use crate::faults::ServerFaults;
use crate::journal::{open_journaled, JournalConfig};
use crate::ops::OpsServer;
use crate::protocol::{read_message, write_message, CampaignParams, Message, PROTOCOL_VERSION};
use crate::state::{GridState, NetStats, WorkReply};
use gridsim::server::{ReplicaId, ServerConfig, ServerStats};
use gridsim::SimTime;
use maxdo::DockingOutput;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use telemetry::{self, Event};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests, benches).
    pub addr: String,
    /// The campaign recipe announced to every agent.
    pub campaign: CampaignParams,
    /// Scheduling-core configuration (deadline, validation switch).
    pub scheduler: ServerConfig,
    /// Connection limits and backoff shaping.
    pub faults: ServerFaults,
    /// Deadline-sweep interval, ms.
    pub sweep_ms: u64,
    /// Write-ahead journal location and policy; `None` keeps all state
    /// in RAM (the pre-durability behaviour).
    pub journal: Option<JournalConfig>,
    /// Bind address of the read-only HTTP observability endpoint
    /// (`/metrics`, `/`); `None` disables it. Port 0 lets the OS pick.
    pub ops_addr: Option<String>,
}

impl NetServerConfig {
    /// A loopback configuration: tiny campaign, short deadlines so
    /// stalls and disconnects reissue within seconds.
    pub fn loopback(deadline_seconds: f64) -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            campaign: CampaignParams::tiny(),
            scheduler: ServerConfig {
                deadline_seconds,
                ..ServerConfig::default()
            },
            faults: ServerFaults::default(),
            sweep_ms: 50,
            journal: None,
            ops_addr: None,
        }
    }
}

/// What a finished campaign run hands back.
#[derive(Debug)]
pub struct NetRunReport {
    /// The scheduling core's issue/validation statistics.
    pub server_stats: ServerStats,
    /// Wire-layer counters (quorum rejects, expiries, backoffs...).
    pub net_stats: NetStats,
    /// The validated output of every workunit, in catalog order — the
    /// artifact that must match the in-process baseline byte for byte.
    pub outputs: Vec<DockingOutput>,
    /// Wall-clock duration of the run, seconds.
    pub wall_seconds: f64,
    /// Workunits in the campaign.
    pub workunits: usize,
    /// Connections accepted over the run.
    pub connections: u64,
    /// Connections turned away at the limit.
    pub rejected_connections: u64,
}

/// A bound, not-yet-running server.
pub struct NetServer {
    listener: TcpListener,
    campaign: Arc<NetCampaign>,
    state: Arc<Mutex<GridState>>,
    config: NetServerConfig,
    /// Server-clock second the journal replay reached (0 for a fresh
    /// state): added to every `epoch.elapsed()` reading so the SimTime
    /// axis stays monotone across restarts.
    clock_offset: f64,
    /// Bound observability endpoint, when `ops_addr` is configured.
    ops: Option<OpsServer>,
}

/// Read timeout on handler sockets: the poll interval at which blocked
/// handlers notice campaign completion.
const HANDLER_POLL: Duration = Duration::from_millis(200);

/// How long a handler keeps serving after the campaign completes, so an
/// agent sleeping on a `NoWork` backoff (capped at 2 s agent-side) can
/// wake, ask once more, and be told `campaign_complete` instead of
/// finding a dead socket and burning its whole reconnect budget.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(3);

impl NetServer {
    /// Binds the listener and materialises the campaign. With a journal
    /// configured, this is also the recovery path: any existing
    /// snapshot + wal under the journal directory is replayed before the
    /// first connection is accepted.
    pub fn bind(config: NetServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let campaign = Arc::new(NetCampaign::build(config.campaign));
        let (state, clock_offset) = match &config.journal {
            Some(journal) => open_journaled(journal, &campaign, config.scheduler, config.faults)?,
            None => (
                GridState::new(&campaign, config.scheduler, config.faults),
                0.0,
            ),
        };
        let ops = match &config.ops_addr {
            Some(addr) => Some(OpsServer::bind(addr)?),
            None => None,
        };
        Ok(Self {
            listener,
            campaign,
            state: Arc::new(Mutex::new(state)),
            config,
            clock_offset,
            ops,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound observability address, when `ops_addr` is configured
    /// (resolves port 0).
    pub fn ops_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().and_then(|o| o.local_addr().ok())
    }

    /// Runs the campaign to completion: accepts volunteers, sweeps
    /// deadlines, and returns once every workunit has validated and the
    /// handlers have drained.
    pub fn run(self) -> io::Result<NetRunReport> {
        let epoch = Instant::now();
        let clock_offset = self.clock_offset;
        // A journaled restart may recover an already-finished campaign.
        let done = Arc::new(AtomicBool::new(
            self.state.lock().unwrap().is_campaign_complete(),
        ));
        let active = Arc::new(AtomicUsize::new(0));
        let mut connections = 0u64;
        let mut rejected = 0u64;
        let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();
        let mut first_panic: Option<String> = None;

        // The ops thread holds its own state Arc and serves scrapes
        // until `done` plus a linger window — it must be joined before
        // the state is torn down below.
        let ops_thread = self
            .ops
            .map(|ops| ops.spawn(Arc::clone(&self.state), Arc::clone(&done)));

        let sweeper = {
            let state = Arc::clone(&self.state);
            let done = Arc::clone(&done);
            let interval = Duration::from_millis(self.config.sweep_ms.max(1));
            thread::spawn(move || {
                while !done.load(Relaxed) {
                    thread::sleep(interval);
                    let mut s = state.lock().unwrap();
                    s.sweep(SimTime::new(clock_offset + epoch.elapsed().as_secs_f64()));
                    if s.is_campaign_complete() {
                        done.store(true, Relaxed);
                    }
                }
            })
        };

        while !done.load(Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let limit = self.config.faults.max_connections;
                    if limit > 0 && active.load(Relaxed) >= limit {
                        // Turned away before any frame is read: counted
                        // (and telemetered) as a rejection, never as an
                        // accepted connection.
                        rejected += 1;
                        let retry_after_ms = self.config.faults.backoff_base_ms.max(1) * 4;
                        let _ = stream.set_nodelay(true);
                        let mut stream = stream;
                        let _ = write_message(&mut stream, &Message::Busy { retry_after_ms });
                        telemetry::emit(None, || Event::ConnectionRejected { retry_after_ms });
                        continue;
                    }
                    connections += 1;
                    active.fetch_add(1, Relaxed);
                    let ctx = HandlerCtx {
                        campaign: Arc::clone(&self.campaign),
                        state: Arc::clone(&self.state),
                        done: Arc::clone(&done),
                        active: Arc::clone(&active),
                        params: self.config.campaign,
                        deadline_seconds: self.config.scheduler.deadline_seconds,
                        epoch,
                        clock_offset,
                    };
                    handlers.push(thread::spawn(move || handle_connection(stream, ctx)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            // Reap finished handlers so a long campaign does not grow an
            // unbounded join list — and *join* them, so a panicked
            // handler surfaces instead of being silently discarded.
            if let Err(msg) = reap_finished(&mut handlers) {
                first_panic.get_or_insert(msg);
                done.store(true, Relaxed);
            }
        }
        drop(self.listener);
        let _ = sweeper.join();
        for h in handlers {
            if let Err(payload) = h.join() {
                first_panic.get_or_insert(panic_message(&*payload));
            }
        }
        if let Some(msg) = first_panic {
            return Err(io::Error::other(format!("handler thread panicked: {msg}")));
        }

        // Captured before the ops join: the ops thread lingers ~1 s
        // past completion for late scrapers, and that grace must not
        // inflate the reported campaign duration.
        let wall_seconds = epoch.elapsed().as_secs_f64();
        if let Some(t) = ops_thread {
            let _ = t.join();
        }

        let state = Arc::try_unwrap(self.state)
            .map_err(|_| ())
            .expect("all state holders joined")
            .into_inner()
            .unwrap();
        let outputs = state
            .accepted_outputs()
            .expect("run() only returns after campaign completion");
        Ok(NetRunReport {
            server_stats: state.server_stats(),
            net_stats: state.net_stats,
            outputs,
            wall_seconds,
            workunits: self.campaign.len(),
            connections,
            rejected_connections: rejected,
        })
    }
}

/// Joins every finished handler out of `handlers`. Returns the first
/// panic message encountered (after still reaping the rest), so the
/// accept loop can shut the run down with a diagnostic instead of
/// leaving the panicked handler's replica to silently age out.
fn reap_finished(handlers: &mut Vec<thread::JoinHandle<()>>) -> Result<(), String> {
    let mut first_panic = None;
    let mut i = 0;
    while i < handlers.len() {
        if handlers[i].is_finished() {
            if let Err(payload) = handlers.swap_remove(i).join() {
                first_panic.get_or_insert(panic_message(&*payload));
            }
        } else {
            i += 1;
        }
    }
    first_panic.map_or(Ok(()), Err)
}

/// Best-effort rendering of a panic payload (panics carry `&str` or
/// `String` in practice).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".into()
    }
}

struct HandlerCtx {
    campaign: Arc<NetCampaign>,
    state: Arc<Mutex<GridState>>,
    done: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    params: CampaignParams,
    deadline_seconds: f64,
    epoch: Instant,
    clock_offset: f64,
}

/// Decrements the active-connection count when the handler exits —
/// *however* it exits. Without the drop guard a panicking handler would
/// leak its slot and walk the server toward rejecting every connection.
struct ActiveGuard(Arc<AtomicUsize>);

impl Drop for ActiveGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Relaxed);
    }
}

fn handle_connection(mut stream: TcpStream, ctx: HandlerCtx) {
    let _guard = ActiveGuard(Arc::clone(&ctx.active));
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(HANDLER_POLL));
    let mut agent_id = 0u64;
    let mut frames = 0u64;
    let reason = serve(&mut stream, &ctx, &mut agent_id, &mut frames);
    telemetry::emit(None, || Event::ConnectionClosed {
        agent: agent_id,
        frames,
        reason: reason.into(),
    });
}

/// The connection's request/reply loop. Returns the close reason for
/// the `ConnectionClosed` telemetry event.
fn serve(
    stream: &mut TcpStream,
    ctx: &HandlerCtx,
    agent_id: &mut u64,
    frames: &mut u64,
) -> &'static str {
    let mut done_since: Option<Instant> = None;
    loop {
        let msg = match read_message(stream) {
            Ok(Some(m)) => m,
            Ok(None) => return "eof",
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll tick: keep serving until the campaign ends,
                // then linger through the grace window so an agent
                // sleeping on a backoff still gets its completion
                // notice on the next request.
                if ctx.done.load(Relaxed)
                    && done_since.get_or_insert_with(Instant::now).elapsed() > SHUTDOWN_GRACE
                {
                    return "eof";
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => return "protocol",
            Err(_) => return "io",
        };
        *frames += 1;
        let now = SimTime::new(ctx.clock_offset + ctx.epoch.elapsed().as_secs_f64());
        let reply = match msg {
            Message::Hello { agent, threads: _ } => {
                *agent_id = agent;
                telemetry::emit(Some(now.seconds()), || Event::ConnectionOpened { agent });
                Message::HelloAck {
                    protocol: PROTOCOL_VERSION,
                    campaign: ctx.params,
                    deadline_seconds: ctx.deadline_seconds,
                }
            }
            Message::RequestWork => {
                let reply = ctx.state.lock().unwrap().fetch(now, *agent_id);
                match reply {
                    WorkReply::Assigned(a) => {
                        let spec = ctx.campaign.spec(a.workunit);
                        Message::Assignment {
                            replica: a.replica.0,
                            workunit: a.workunit,
                            receptor: spec.receptor.0,
                            ligand: spec.ligand.0,
                            isep_start: spec.isep_start,
                            positions: spec.positions,
                            deadline_seconds: ctx.deadline_seconds,
                        }
                    }
                    WorkReply::Backoff {
                        retry_after_ms,
                        campaign_complete,
                    } => Message::NoWork {
                        campaign_complete,
                        retry_after_ms,
                    },
                }
            }
            Message::ResultReport {
                replica,
                workunit,
                output,
            } => {
                let disposition = ctx.state.lock().unwrap().report(
                    now,
                    &ctx.campaign,
                    ReplicaId(replica),
                    workunit,
                    output,
                );
                if disposition.campaign_complete {
                    ctx.done.store(true, Relaxed);
                }
                Message::ResultAck {
                    accepted: matches!(
                        disposition.verdict,
                        crate::state::Verdict::Accepted
                            | crate::state::Verdict::QuorumPending
                            | crate::state::Verdict::Late
                    ),
                    completed_workunit: disposition.completed_workunit,
                    campaign_complete: disposition.campaign_complete,
                }
            }
            Message::Bye => return "bye",
            // Server-to-agent frames arriving here mean a confused peer.
            _ => return "protocol",
        };
        if write_message(stream, &reply).is_err() {
            return "io";
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression for the silent-discard bug: `retain(|h|
    /// !h.is_finished())` dropped JoinHandles without joining, so a
    /// panicked handler vanished without a diagnostic.
    #[test]
    fn reap_joins_finished_handlers_and_surfaces_the_panic() {
        let mut handlers = vec![
            thread::spawn(|| {}),
            thread::spawn(|| panic!("boom in handler")),
            thread::spawn(|| {}),
        ];
        while handlers.iter().any(|h| !h.is_finished()) {
            thread::sleep(Duration::from_millis(2));
        }
        let err = reap_finished(&mut handlers).expect_err("panic must surface");
        assert!(err.contains("boom in handler"), "got: {err}");
        assert!(handlers.is_empty(), "every finished handler was joined");
    }

    #[test]
    fn reap_of_healthy_handlers_is_clean() {
        let mut handlers = vec![thread::spawn(|| {}), thread::spawn(|| {})];
        while handlers.iter().any(|h| !h.is_finished()) {
            thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(reap_finished(&mut handlers), Ok(()));
        assert!(handlers.is_empty());
    }

    #[test]
    fn active_guard_decrements_even_through_a_panic() {
        let active = Arc::new(AtomicUsize::new(1));
        let cloned = Arc::clone(&active);
        let h = thread::spawn(move || {
            let _guard = ActiveGuard(cloned);
            panic!("handler died");
        });
        assert!(h.join().is_err());
        assert_eq!(active.load(Relaxed), 0, "slot released despite the panic");
    }

    #[test]
    fn panic_messages_render_str_and_string_payloads() {
        let a = thread::spawn(|| panic!("static str")).join().unwrap_err();
        assert_eq!(panic_message(&*a), "static str");
        let s = String::from("owned");
        let b = thread::spawn(move || panic!("{s}")).join().unwrap_err();
        assert_eq!(panic_message(&*b), "owned");
    }
}

//! The wire-level task server.
//!
//! A small, dependency-free TCP daemon: a non-blocking accept loop, one
//! handler thread per connection, and a deadline-sweeper thread, all
//! sharing one mutex-guarded [`GridState`]. The scheduling itself never
//! left `gridsim::SchedulerCore` — this module only moves frames and
//! maps wall-clock time onto the core's [`SimTime`] axis (seconds since
//! server start, so a wall run of a few minutes sits firmly inside day
//! 0's quorum-compare era).
//!
//! Concurrency model: the per-connection handler holds the state lock
//! only across one scheduler call (`fetch` / `report`), never across a
//! socket operation, so a stalled volunteer cannot wedge the grid. The
//! docking work itself happens on the *agents*; the server's handlers
//! are I/O-bound and a plain mutex is far from contention at the
//! dozens-of-volunteers scale the loopback campaigns run at.

use crate::campaign::NetCampaign;
use crate::faults::ServerFaults;
use crate::protocol::{read_message, write_message, CampaignParams, Message, PROTOCOL_VERSION};
use crate::state::{GridState, NetStats, WorkReply};
use gridsim::server::{ReplicaId, ServerConfig, ServerStats};
use gridsim::SimTime;
use maxdo::DockingOutput;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};
use telemetry::{self, Event};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests, benches).
    pub addr: String,
    /// The campaign recipe announced to every agent.
    pub campaign: CampaignParams,
    /// Scheduling-core configuration (deadline, validation switch).
    pub scheduler: ServerConfig,
    /// Connection limits and backoff shaping.
    pub faults: ServerFaults,
    /// Deadline-sweep interval, ms.
    pub sweep_ms: u64,
}

impl NetServerConfig {
    /// A loopback configuration: tiny campaign, short deadlines so
    /// stalls and disconnects reissue within seconds.
    pub fn loopback(deadline_seconds: f64) -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            campaign: CampaignParams::tiny(),
            scheduler: ServerConfig {
                deadline_seconds,
                ..ServerConfig::default()
            },
            faults: ServerFaults::default(),
            sweep_ms: 50,
        }
    }
}

/// What a finished campaign run hands back.
#[derive(Debug)]
pub struct NetRunReport {
    /// The scheduling core's issue/validation statistics.
    pub server_stats: ServerStats,
    /// Wire-layer counters (quorum rejects, expiries, backoffs...).
    pub net_stats: NetStats,
    /// The validated output of every workunit, in catalog order — the
    /// artifact that must match the in-process baseline byte for byte.
    pub outputs: Vec<DockingOutput>,
    /// Wall-clock duration of the run, seconds.
    pub wall_seconds: f64,
    /// Workunits in the campaign.
    pub workunits: usize,
    /// Connections accepted over the run.
    pub connections: u64,
    /// Connections turned away at the limit.
    pub rejected_connections: u64,
}

/// A bound, not-yet-running server.
pub struct NetServer {
    listener: TcpListener,
    campaign: Arc<NetCampaign>,
    state: Arc<Mutex<GridState>>,
    config: NetServerConfig,
}

/// Read timeout on handler sockets: the poll interval at which blocked
/// handlers notice campaign completion.
const HANDLER_POLL: Duration = Duration::from_millis(200);

impl NetServer {
    /// Binds the listener and materialises the campaign.
    pub fn bind(config: NetServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let campaign = Arc::new(NetCampaign::build(config.campaign));
        let state = Arc::new(Mutex::new(GridState::new(
            &campaign,
            config.scheduler,
            config.faults,
        )));
        Ok(Self {
            listener,
            campaign,
            state,
            config,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the campaign to completion: accepts volunteers, sweeps
    /// deadlines, and returns once every workunit has validated and the
    /// handlers have drained.
    pub fn run(self) -> io::Result<NetRunReport> {
        let epoch = Instant::now();
        let done = Arc::new(AtomicBool::new(false));
        let active = Arc::new(AtomicUsize::new(0));
        let mut connections = 0u64;
        let mut rejected = 0u64;
        let mut handlers: Vec<thread::JoinHandle<()>> = Vec::new();

        let sweeper = {
            let state = Arc::clone(&self.state);
            let done = Arc::clone(&done);
            let interval = Duration::from_millis(self.config.sweep_ms.max(1));
            thread::spawn(move || {
                while !done.load(Relaxed) {
                    thread::sleep(interval);
                    let mut s = state.lock().unwrap();
                    s.sweep(SimTime::new(epoch.elapsed().as_secs_f64()));
                    if s.is_campaign_complete() {
                        done.store(true, Relaxed);
                    }
                }
            })
        };

        while !done.load(Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    connections += 1;
                    let limit = self.config.faults.max_connections;
                    if limit > 0 && active.load(Relaxed) >= limit {
                        rejected += 1;
                        let _ = stream.set_nodelay(true);
                        let mut stream = stream;
                        let _ = write_message(
                            &mut stream,
                            &Message::Busy {
                                retry_after_ms: self.config.faults.backoff_base_ms.max(1) * 4,
                            },
                        );
                        telemetry::emit(None, || Event::ConnectionClosed {
                            agent: 0,
                            frames: 1,
                            reason: "server-full".into(),
                        });
                        continue;
                    }
                    active.fetch_add(1, Relaxed);
                    let ctx = HandlerCtx {
                        campaign: Arc::clone(&self.campaign),
                        state: Arc::clone(&self.state),
                        done: Arc::clone(&done),
                        active: Arc::clone(&active),
                        params: self.config.campaign,
                        deadline_seconds: self.config.scheduler.deadline_seconds,
                        epoch,
                    };
                    handlers.push(thread::spawn(move || handle_connection(stream, ctx)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            // Reap finished handlers so a long campaign does not grow an
            // unbounded join list.
            handlers.retain(|h| !h.is_finished());
        }
        drop(self.listener);
        let _ = sweeper.join();
        for h in handlers {
            let _ = h.join();
        }

        let state = Arc::try_unwrap(self.state)
            .map_err(|_| ())
            .expect("all state holders joined")
            .into_inner()
            .unwrap();
        let outputs = state
            .accepted_outputs()
            .expect("run() only returns after campaign completion");
        Ok(NetRunReport {
            server_stats: state.server_stats(),
            net_stats: state.net_stats,
            outputs,
            wall_seconds: epoch.elapsed().as_secs_f64(),
            workunits: self.campaign.len(),
            connections,
            rejected_connections: rejected,
        })
    }
}

struct HandlerCtx {
    campaign: Arc<NetCampaign>,
    state: Arc<Mutex<GridState>>,
    done: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    params: CampaignParams,
    deadline_seconds: f64,
    epoch: Instant,
}

fn handle_connection(mut stream: TcpStream, ctx: HandlerCtx) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(HANDLER_POLL));
    let mut agent_id = 0u64;
    let mut frames = 0u64;
    let reason = serve(&mut stream, &ctx, &mut agent_id, &mut frames);
    telemetry::emit(None, || Event::ConnectionClosed {
        agent: agent_id,
        frames,
        reason: reason.into(),
    });
    ctx.active.fetch_sub(1, Relaxed);
}

/// The connection's request/reply loop. Returns the close reason for
/// the `ConnectionClosed` telemetry event.
fn serve(
    stream: &mut TcpStream,
    ctx: &HandlerCtx,
    agent_id: &mut u64,
    frames: &mut u64,
) -> &'static str {
    loop {
        let msg = match read_message(stream) {
            Ok(Some(m)) => m,
            Ok(None) => return "eof",
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // Idle poll tick: keep serving until the campaign ends.
                if ctx.done.load(Relaxed) {
                    return "eof";
                }
                continue;
            }
            Err(e) if e.kind() == io::ErrorKind::InvalidData => return "protocol",
            Err(_) => return "io",
        };
        *frames += 1;
        let now = SimTime::new(ctx.epoch.elapsed().as_secs_f64());
        let reply = match msg {
            Message::Hello { agent, threads: _ } => {
                *agent_id = agent;
                telemetry::emit(Some(now.seconds()), || Event::ConnectionOpened { agent });
                Message::HelloAck {
                    protocol: PROTOCOL_VERSION,
                    campaign: ctx.params,
                    deadline_seconds: ctx.deadline_seconds,
                }
            }
            Message::RequestWork => {
                let reply = ctx.state.lock().unwrap().fetch(now, *agent_id);
                match reply {
                    WorkReply::Assigned(a) => {
                        let spec = ctx.campaign.spec(a.workunit);
                        Message::Assignment {
                            replica: a.replica.0,
                            workunit: a.workunit,
                            receptor: spec.receptor.0,
                            ligand: spec.ligand.0,
                            isep_start: spec.isep_start,
                            positions: spec.positions,
                            deadline_seconds: ctx.deadline_seconds,
                        }
                    }
                    WorkReply::Backoff {
                        retry_after_ms,
                        campaign_complete,
                    } => Message::NoWork {
                        campaign_complete,
                        retry_after_ms,
                    },
                }
            }
            Message::ResultReport {
                replica,
                workunit,
                output,
            } => {
                let disposition = ctx.state.lock().unwrap().report(
                    now,
                    &ctx.campaign,
                    ReplicaId(replica),
                    workunit,
                    output,
                );
                if disposition.campaign_complete {
                    ctx.done.store(true, Relaxed);
                }
                Message::ResultAck {
                    accepted: matches!(
                        disposition.verdict,
                        crate::state::Verdict::Accepted
                            | crate::state::Verdict::QuorumPending
                            | crate::state::Verdict::Late
                    ),
                    completed_workunit: disposition.completed_workunit,
                    campaign_complete: disposition.campaign_complete,
                }
            }
            Message::Bye => return "bye",
            // Server-to-agent frames arriving here mean a confused peer.
            _ => return "protocol",
        };
        if write_message(stream, &reply).is_err() {
            return "io";
        }
    }
}

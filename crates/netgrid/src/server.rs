//! The wire-level task server.
//!
//! A small, dependency-free TCP daemon built as a **single-threaded
//! nonblocking event loop**: one [`crate::sys::Poller`] watches the
//! listener and every volunteer socket, and each connection advances a
//! tiny state machine (accumulate bytes → decode frame → dispatch →
//! queue reply → flush). The scheduling itself never left
//! `gridsim::SchedulerCore` — this module only moves frames and maps
//! wall-clock time onto the core's [`SimTime`] axis (seconds since
//! server start, so a wall run of a few minutes sits firmly inside day
//! 0's quorum-compare era).
//!
//! Why an event loop: the previous design spawned one OS thread per
//! agent, which topped out around the dozens-of-volunteers scale —
//! 10 000 loopback agents would mean 10 000 stacks and a scheduler
//! meltdown. Here every connection is a few hundred bytes of buffer
//! state, the deadline sweeper and the journal fsync policy are timer
//! events on the same loop, and the state mutex (still shared with the
//! ops scrape thread) is only ever taken from this one thread for
//! scheduler calls.
//!
//! Codec negotiation is per-frame: the loop decodes whatever version
//! the agent sent (JSON v1 or binary v2) and answers in that same
//! codec, so a v1-only agent never sees a v2 frame. See
//! [`crate::protocol::Codec`].

use crate::faults::ServerFaults;
use crate::journal::JournalConfig;
use crate::ops::OpsServer;
use crate::protocol::{
    decode_versioned, encode_with, CampaignParams, Codec, DecodeError, Message, PROTOCOL_VERSION,
};
use crate::registry::{CampaignDef, MultiGrid};
use crate::shard::{ShardSpec, LEASE_CHUNK, STEER_INTERVAL_MS, STEER_TIMEOUT_MS};
use crate::state::{NetStats, WorkReply};
use crate::sys::{Event as IoEvent, Poller};
use gridsim::server::{ReplicaId, ServerConfig, ServerStats};
use gridsim::SimTime;
use maxdo::DockingOutput;
use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use telemetry::{self, Event};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Bind address; use port 0 to let the OS pick (tests, benches).
    pub addr: String,
    /// The campaign recipe announced to every agent.
    pub campaign: CampaignParams,
    /// Scheduling-core configuration (deadline, validation switch).
    pub scheduler: ServerConfig,
    /// Connection limits and backoff shaping.
    pub faults: ServerFaults,
    /// Deadline-sweep interval, ms.
    pub sweep_ms: u64,
    /// Write-ahead journal location and policy; `None` keeps all state
    /// in RAM (the pre-durability behaviour).
    pub journal: Option<JournalConfig>,
    /// Bind address of the read-only HTTP observability endpoint
    /// (`/metrics`, `/`); `None` disables it. Port 0 lets the OS pick.
    pub ops_addr: Option<String>,
    /// Sharded topology: this server's place in it plus every shard's
    /// listen address. `None` runs the classic single-server campaign.
    pub shard: Option<ShardTopology>,
    /// The campaign roster with fair-share weights. Empty hosts the
    /// single implicit campaign built from `campaign` (slot 0, name
    /// `"default"`) — the pre-registry behaviour, including the journal
    /// layout. Non-empty replaces `campaign` entirely; slot order is
    /// the roster order v4 assignments index.
    pub campaigns: Vec<CampaignDef>,
}

/// One shard's view of the sharded campaign topology.
#[derive(Debug, Clone)]
pub struct ShardTopology {
    /// This server's shard id and the total shard count.
    pub spec: ShardSpec,
    /// Main listener address of every shard, indexed by shard id
    /// (`addrs[spec.shard_id]` is this server's own advertised
    /// address). Steering gossip and agent redirects both use it.
    pub addrs: Vec<String>,
}

impl NetServerConfig {
    /// A loopback configuration: tiny campaign, short deadlines so
    /// stalls and disconnects reissue within seconds.
    pub fn loopback(deadline_seconds: f64) -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            campaign: CampaignParams::tiny(),
            scheduler: ServerConfig {
                deadline_seconds,
                ..ServerConfig::default()
            },
            faults: ServerFaults::default(),
            sweep_ms: 50,
            journal: None,
            ops_addr: None,
            shard: None,
            campaigns: Vec::new(),
        }
    }
}

/// What a finished campaign run hands back.
#[derive(Debug)]
pub struct NetRunReport {
    /// The scheduling core's issue/validation statistics.
    pub server_stats: ServerStats,
    /// Wire-layer counters (quorum rejects, expiries, backoffs...).
    pub net_stats: NetStats,
    /// The validated output of every workunit, in catalog order — the
    /// artifact that must match the in-process baseline byte for byte.
    /// Empty for a sharded run (one shard validates only its slice);
    /// use [`Self::partial_outputs`] and merge across shards instead.
    pub outputs: Vec<DockingOutput>,
    /// The validated output per workunit, `Some` exactly where this
    /// server validated — the sharded partial artifact. On a
    /// single-server run every slot is `Some`.
    pub partial_outputs: Vec<Option<DockingOutput>>,
    /// This server's place in the shard topology (solo when unsharded).
    pub shard: ShardSpec,
    /// Wall-clock duration of the run, seconds.
    pub wall_seconds: f64,
    /// Workunits in the campaign.
    pub workunits: usize,
    /// Connections accepted over the run.
    pub connections: u64,
    /// Connections turned away at the limit.
    pub rejected_connections: u64,
    /// Reference CPU seconds burned on results that were not useful.
    pub wasted_ref_seconds: f64,
    /// Trust band census at shutdown; `None` when the policy is off.
    pub trust: Option<crate::state::TrustSummary>,
    /// Per-agent trust ledger at shutdown, sorted by agent id; empty
    /// when the policy is off.
    pub agent_trust: Vec<(u64, crate::trust::AgentTrust)>,
    /// Per-campaign results, in registry slot order. A single implicit
    /// campaign still gets its one row here; the legacy top-level
    /// fields above always describe slot 0.
    pub campaigns: Vec<CampaignRunReport>,
    /// Largest deviation between any campaign's delivered-ref-second
    /// fraction and its configured share (0.0 for a single campaign).
    pub share_error: f64,
    /// Fetches denied by the cross-campaign trust gate (quarantined in
    /// one campaign, asking another).
    pub cross_quarantine_denials: u64,
}

/// One campaign's slice of a finished multi-campaign run.
#[derive(Debug)]
pub struct CampaignRunReport {
    /// Registry name (journal subdirectory, artifact suffix).
    pub name: String,
    /// Normalised fair-share weight.
    pub share: f64,
    /// Fair-share tie-break priority.
    pub priority: u32,
    /// Validated reference-CPU seconds delivered to this campaign.
    pub delivered_ref_seconds: f64,
    /// Times this campaign was served while a larger-deficit campaign
    /// was starved for work — lent capacity, repaid via the deficit.
    pub borrows: u64,
    /// The campaign's merged artifact (empty for a sharded run; merge
    /// `partial_outputs` across shards instead).
    pub outputs: Vec<DockingOutput>,
    /// Validated output per workunit, `Some` where this server
    /// validated — the sharded partial artifact.
    pub partial_outputs: Vec<Option<DockingOutput>>,
    /// Workunits in this campaign's catalog.
    pub workunits: usize,
    /// The campaign scheduler core's issue/validation statistics.
    pub server_stats: ServerStats,
    /// The campaign's wire-layer counters.
    pub net_stats: NetStats,
}

/// A bound, not-yet-running server.
pub struct NetServer {
    listener: TcpListener,
    grid: Arc<Mutex<MultiGrid>>,
    config: NetServerConfig,
    /// Server-clock second the journal replay reached (0 for a fresh
    /// state): added to every `epoch.elapsed()` reading so the SimTime
    /// axis stays monotone across restarts.
    clock_offset: f64,
    /// Bound observability endpoint, when `ops_addr` is configured.
    ops: Option<OpsServer>,
}

/// How long the loop keeps serving after the campaign completes, so an
/// agent sleeping on a `NoWork` backoff (capped at 2 s agent-side) can
/// wake, ask once more, and be told `campaign_complete` instead of
/// finding a dead socket and burning its whole reconnect budget.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(3);

/// Per-read scratch size. Large enough that a typical request frame
/// arrives in one `read`, small enough to sit on the stack.
const READ_CHUNK: usize = 16 * 1024;

/// One live connection's state: buffered bytes in each direction plus
/// the bookkeeping the dispatch needs. The implicit state machine is
/// *reading header → reading payload → dispatching → writing reply* —
/// the first two are simply "does `read_buf` decode yet", the last is
/// "is `write_buf` drained yet".
struct Conn {
    stream: TcpStream,
    /// Bytes received but not yet decoded into frames.
    read_buf: Vec<u8>,
    /// Encoded replies not yet flushed to the socket.
    write_buf: Vec<u8>,
    /// How much of `write_buf` has been written so far.
    write_pos: usize,
    /// The agent id learned from `Hello` (0 until then).
    agent: u64,
    /// The campaign attach mask resolved from the `Hello` request —
    /// empty until then (treated as "default campaign only", which is
    /// also what every v1–v3 agent gets).
    attached: Vec<bool>,
    /// Frames decoded on this connection (for close telemetry).
    frames: u64,
    /// The codec of the most recent frame from this peer; replies use
    /// the same codec, which is the whole negotiation.
    codec: Codec,
    /// Set when the connection should close once `write_buf` drains,
    /// carrying the close reason for telemetry.
    closing: Option<&'static str>,
    /// A connection turned away at the limit: it gets a `Busy` frame
    /// and a close, and was telemetered as *rejected*, so it must not
    /// emit a `ConnectionClosed` event.
    brushoff: bool,
    /// The interest currently registered with the poller, so interest
    /// updates only hit `epoll_ctl` when something changed.
    interest: (bool, bool),
}

impl Conn {
    fn new(stream: TcpStream, brushoff: bool) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            agent: 0,
            attached: Vec::new(),
            frames: 0,
            codec: Codec::Json,
            closing: None,
            brushoff,
            interest: (false, false),
        }
    }

    /// Drains as much of `write_buf` as the socket will take. Returns
    /// `Ok(true)` when fully flushed.
    fn flush(&mut self) -> io::Result<bool> {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        Ok(true)
    }

    /// The interest this connection wants right now: reads while the
    /// dialogue is open, writes only while bytes are queued.
    fn wanted_interest(&self) -> (bool, bool) {
        let pending_write = self.write_pos < self.write_buf.len();
        (self.closing.is_none() && !self.brushoff, pending_write)
    }
}

impl NetServer {
    /// Binds the listener and materialises the campaign. With a journal
    /// configured, this is also the recovery path: any existing
    /// snapshot + wal under the journal directory is replayed before the
    /// first connection is accepted.
    pub fn bind(config: NetServerConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        // std's listen backlog is 128; a 10k-agent reconnect storm
        // overflows that and every dropped SYN costs the dialer a 1 s
        // retransmit. Widen it (the kernel clamps to somaxconn).
        crate::sys::widen_listen_backlog(listener.as_raw_fd(), 4096);
        let spec = match &config.shard {
            Some(topo) => {
                if usize::from(topo.spec.shards) != topo.addrs.len()
                    || topo.spec.shard_id >= topo.spec.shards
                {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!(
                            "shard {}/{} with {} addresses",
                            topo.spec.shard_id,
                            topo.spec.shards,
                            topo.addrs.len()
                        ),
                    ));
                }
                topo.spec
            }
            None => ShardSpec::solo(),
        };
        let defs = if config.campaigns.is_empty() {
            vec![CampaignDef::default_solo(config.campaign)]
        } else {
            config.campaigns.clone()
        };
        let (grid, clock_offset) = MultiGrid::open(
            defs,
            config.scheduler,
            config.faults,
            spec,
            config.journal.as_ref(),
        )?;
        let ops = match &config.ops_addr {
            Some(addr) => Some(OpsServer::bind(addr)?),
            None => None,
        };
        Ok(Self {
            listener,
            grid: Arc::new(Mutex::new(grid)),
            config,
            clock_offset,
            ops,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound observability address, when `ops_addr` is configured
    /// (resolves port 0).
    pub fn ops_addr(&self) -> Option<SocketAddr> {
        self.ops.as_ref().and_then(|o| o.local_addr().ok())
    }

    /// Runs the campaign to completion: accepts volunteers, sweeps
    /// deadlines, and returns once every workunit has validated and the
    /// connections have drained (or the shutdown grace expires).
    pub fn run(self) -> io::Result<NetRunReport> {
        let epoch = Instant::now();
        let spec = self
            .config
            .shard
            .as_ref()
            .map_or_else(ShardSpec::solo, |t| t.spec);
        let campaign_count = self.grid.lock().unwrap().len();
        // One board per campaign: lease steering and peer completion
        // are tracked per registry slot across the same peer set.
        let boards = Arc::new(Mutex::new(
            (0..campaign_count)
                .map(|_| ShardBoard::new(spec.shards))
                .collect::<Vec<_>>(),
        ));
        // A journaled restart may recover an already-finished campaign
        // — but a sharded server must still wait on its peers.
        let done = Arc::new(AtomicBool::new(
            spec.shards == 1 && self.grid.lock().unwrap().all_complete(),
        ));

        // The ops thread holds its own registry Arc and serves scrapes
        // until `done` plus a linger window — it must be joined before
        // the state is torn down below.
        let ops_thread = self
            .ops
            .map(|ops| ops.spawn(Arc::clone(&self.grid), Arc::clone(&done)));

        // The steering thread gossips this shard's load picture to
        // every peer and adopts any leases offered back. Inbound gossip
        // is answered by the event loop like any other frame.
        let steer_thread = self.config.shard.clone().map(|topo| {
            let grid = Arc::clone(&self.grid);
            let done = Arc::clone(&done);
            let boards = Arc::clone(&boards);
            std::thread::spawn(move || steer_loop(&topo, &grid, &boards, &done))
        });

        let mut event_loop = EventLoop {
            listener: Some(self.listener),
            grid: Arc::clone(&self.grid),
            done: Arc::clone(&done),
            deadline_seconds: self.config.scheduler.deadline_seconds,
            faults: self.config.faults,
            epoch,
            clock_offset: self.clock_offset,
            poller: Poller::new()?,
            conns: HashMap::new(),
            connections: 0,
            rejected: 0,
            accepted_active: 0,
            shard: self.config.shard.clone(),
            boards: Arc::clone(&boards),
        };
        event_loop.run(Duration::from_millis(self.config.sweep_ms.max(1)))?;
        let connections = event_loop.connections;
        let rejected = event_loop.rejected;
        drop(event_loop);

        // Captured before the ops join: the ops thread lingers ~1 s
        // past completion for late scrapers, and that grace must not
        // inflate the reported campaign duration.
        let wall_seconds = epoch.elapsed().as_secs_f64();
        if let Some(t) = steer_thread {
            let _ = t.join();
        }
        if let Some(t) = ops_thread {
            let _ = t.join();
        }

        let grid = Arc::try_unwrap(self.grid)
            .map_err(|_| ())
            .expect("all state holders joined")
            .into_inner()
            .unwrap();
        let share_error = grid.share_error();
        let cross_quarantine_denials = grid.cross_quarantine_denials;
        let campaigns: Vec<CampaignRunReport> = grid
            .slots()
            .iter()
            .enumerate()
            .map(|(i, slot)| CampaignRunReport {
                name: slot.def.name.clone(),
                share: grid.fair().share(i),
                priority: slot.def.priority,
                delivered_ref_seconds: grid.fair().delivered(i),
                borrows: grid.fair().borrows(i),
                outputs: match spec.shards {
                    1 => slot
                        .state
                        .accepted_outputs()
                        .expect("run() only returns after campaign completion"),
                    _ => Vec::new(),
                },
                partial_outputs: slot.state.partial_outputs(),
                workunits: slot.campaign.len(),
                server_stats: slot.state.server_stats(),
                net_stats: slot.state.net_stats,
            })
            .collect();
        let slot0 = &grid.slots()[0];
        Ok(NetRunReport {
            server_stats: slot0.state.server_stats(),
            net_stats: slot0.state.net_stats,
            wasted_ref_seconds: slot0.state.wasted_ref_seconds(),
            trust: slot0.state.trust_summary(),
            agent_trust: slot0.state.agent_trust_table(),
            partial_outputs: slot0.state.partial_outputs(),
            shard: spec,
            outputs: campaigns[0].outputs.clone(),
            wall_seconds,
            workunits: slot0.campaign.len(),
            connections,
            rejected_connections: rejected,
            campaigns,
            share_error,
            cross_quarantine_denials,
        })
    }
}

/// What the dispatch of one decoded frame asks the loop to do.
enum Disposition {
    /// Queue this reply (in the connection's codec) and keep reading.
    Reply(Message),
    /// Queue several replies — steering gossip can answer one
    /// `ShardStatus` with re-sent grants, a fresh grant, *and* the ack.
    ReplyMany(Vec<Message>),
    /// Close once queued replies flush, with this telemetry reason.
    Close(&'static str),
}

/// What each shard knows about its peers, fed by both gossip
/// directions (inbound `ShardStatus` frames and the acks the steering
/// thread collects). Shared between the event loop and the steering
/// thread.
struct ShardBoard {
    /// Sticky per-shard completion: once a peer reports its owned
    /// slice validated, that never un-happens (leases only move
    /// never-issued work, and a complete shard has none).
    complete: Vec<bool>,
    /// Each peer's last advertised fresh backlog — the redirect target
    /// picker's input.
    backlog: Vec<u64>,
}

impl ShardBoard {
    fn new(shards: u16) -> Self {
        Self {
            complete: vec![false; usize::from(shards)],
            backlog: vec![0; usize::from(shards)],
        }
    }

    fn note(&mut self, shard: u16, complete: bool, backlog: Option<u64>) {
        let i = usize::from(shard);
        if i < self.complete.len() {
            self.complete[i] |= complete;
            if let Some(b) = backlog {
                self.backlog[i] = b;
            }
        }
    }

    /// True when every shard but `me` has reported completion.
    fn peers_complete(&self, me: u16) -> bool {
        self.complete
            .iter()
            .enumerate()
            .all(|(i, &c)| c || i == usize::from(me))
    }

    /// The peer with the deepest advertised backlog, if any has one.
    fn busiest_peer(&self, me: u16) -> Option<(u16, u64)> {
        self.backlog
            .iter()
            .enumerate()
            .filter(|&(i, &b)| i != usize::from(me) && b > 0 && !self.complete[i])
            .max_by_key(|&(_, &b)| b)
            .map(|(i, &b)| (i as u16, b))
    }
}

/// The steering thread: every [`STEER_INTERVAL_MS`] it sends this
/// shard's load picture to each peer and applies whatever comes back
/// (lease grants are adopted and journaled; acks update the board).
/// A peer that is down, slow, or over its connection limit costs one
/// bounded timeout and is retried next tick — steering rides the same
/// listener as agent traffic, so no extra port is needed.
fn steer_loop(
    topo: &ShardTopology,
    grid: &Mutex<MultiGrid>,
    boards: &Mutex<Vec<ShardBoard>>,
    done: &AtomicBool,
) {
    let me = topo.spec.shard_id;
    let campaign_count = grid.lock().unwrap().len();
    // Multi-campaign gossip needs the v4 campaign field on the wire; a
    // single-campaign fleet keeps the v3 byte stream so mixed-build
    // shard sets stay interoperable.
    let codec = if campaign_count > 1 {
        Codec::BinaryV4
    } else {
        Codec::BinaryV3
    };
    let mut backoffs_seen = vec![0u64; campaign_count];
    while !done.load(Relaxed) {
        std::thread::sleep(Duration::from_millis(STEER_INTERVAL_MS));
        let mut all_complete = true;
        for (c, seen) in backoffs_seen.iter_mut().enumerate() {
            // One status per campaign per tick: agent demand is
            // "someone asked this campaign and got nothing since the
            // last tick", which gates hunger so an agent-less drained
            // shard never begs work off a loaded one.
            let (mut status, complete) = {
                let g = grid.lock().unwrap();
                let s = &g.slots()[c].state;
                let backoffs = s.net_stats.backoffs_sent;
                let demand = backoffs > *seen;
                *seen = backoffs;
                let complete = s.is_campaign_complete();
                let fresh = s.core().fresh_backlog() as u64;
                (
                    Message::ShardStatus {
                        shard: me,
                        fresh_backlog: fresh,
                        outstanding: s.outstanding_len() as u64,
                        complete,
                        hungry: !complete && fresh == 0 && demand,
                        leases_held: Vec::new(), // per-peer, filled below
                        campaign: c as u16,
                    },
                    complete,
                )
            };
            all_complete &= complete;
            for peer in 0..topo.spec.shards {
                if peer == me {
                    continue;
                }
                if let Message::ShardStatus { leases_held, .. } = &mut status {
                    *leases_held = grid.lock().unwrap().slots()[c].state.leases_held_from(peer);
                }
                let replies = match steer_exchange(&topo.addrs[usize::from(peer)], &status, codec) {
                    Ok(replies) => replies,
                    Err(_) => continue, // down or slow; next tick retries
                };
                for reply in replies {
                    match reply {
                        Message::LeaseGrant {
                            lease,
                            from_shard,
                            wus,
                            complete: peer_complete,
                            campaign,
                        } => {
                            let mut g = grid.lock().unwrap();
                            let i = usize::from(campaign).min(g.len() - 1);
                            // The shared clock lives in the event loop;
                            // the monotone high-water mark is the right
                            // stamp.
                            let now = SimTime::new(g.last_now());
                            g.slots_mut()[i].state.adopt_lease(now, lease, &wus);
                            drop(g);
                            let mut bs = boards.lock().unwrap();
                            bs[i].note(from_shard, peer_complete, None);
                        }
                        Message::StatusAck {
                            shard,
                            complete: peer_complete,
                        } => boards.lock().unwrap()[c].note(shard, peer_complete, None),
                        _ => {}
                    }
                }
            }
        }
        // Completion is decided here as well as on the sweep tick, so a
        // shard whose last workunit validated long ago still notices
        // the moment its final peer reports complete.
        if all_complete && boards.lock().unwrap().iter().all(|b| b.peers_complete(me)) {
            done.store(true, Relaxed);
        }
    }
}

/// One blocking steering exchange: connect, send the status, read
/// frames until the terminating `StatusAck` (or until the peer hangs
/// up / the timeout fires). Every step is bounded by
/// [`STEER_TIMEOUT_MS`].
fn steer_exchange(addr: &str, status: &Message, codec: Codec) -> io::Result<Vec<Message>> {
    let timeout = Duration::from_millis(STEER_TIMEOUT_MS);
    let sock = addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable peer"))?;
    let mut stream = TcpStream::connect_timeout(&sock, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let _ = stream.set_nodelay(true);
    stream.write_all(&encode_with(status, codec))?;
    let mut replies = Vec::new();
    let mut buf = Vec::new();
    let mut chunk = [0u8; READ_CHUNK];
    loop {
        match decode_versioned(&buf) {
            Ok((msg, consumed, _)) => {
                buf.drain(..consumed);
                let last = matches!(msg, Message::StatusAck { .. } | Message::Busy { .. });
                replies.push(msg);
                if last {
                    return Ok(replies);
                }
                continue;
            }
            Err(DecodeError::Incomplete { .. }) => {}
            Err(_) => return Err(io::ErrorKind::InvalidData.into()),
        }
        match stream.read(&mut chunk) {
            Ok(0) => return Ok(replies),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
}

/// The readiness loop and every piece of context its handlers need.
struct EventLoop {
    /// `Some` while accepting; dropped (closing the socket) the moment
    /// the campaign completes, so no new volunteers join the grace
    /// window.
    listener: Option<TcpListener>,
    grid: Arc<Mutex<MultiGrid>>,
    done: Arc<AtomicBool>,
    deadline_seconds: f64,
    faults: ServerFaults,
    epoch: Instant,
    clock_offset: f64,
    poller: Poller,
    conns: HashMap<i32, Conn>,
    connections: u64,
    rejected: u64,
    /// Live accepted (non-brushoff) connections, against
    /// `faults.max_connections`.
    accepted_active: usize,
    /// Sharded topology, when this server is one shard of several.
    shard: Option<ShardTopology>,
    /// Peer completion/backlog picture, one board per campaign
    /// (shared with steering).
    boards: Arc<Mutex<Vec<ShardBoard>>>,
}

impl EventLoop {
    fn now(&self) -> SimTime {
        SimTime::new(self.clock_offset + self.epoch.elapsed().as_secs_f64())
    }

    /// Whether everything this agent is attached to (not just this
    /// shard's slice of it) is done: local completion of the attached
    /// campaigns plus, when sharded, every peer's on each of them.
    fn globally_complete_for(&self, local_complete: bool, attached: &[bool]) -> bool {
        match &self.shard {
            None => local_complete,
            Some(topo) => {
                local_complete
                    && self
                        .boards
                        .lock()
                        .unwrap()
                        .iter()
                        .enumerate()
                        .all(|(i, b)| {
                            !attached.get(i).copied().unwrap_or(i == 0)
                                || b.peers_complete(topo.spec.shard_id)
                        })
            }
        }
    }

    /// Whether the *whole roster* is done everywhere — the server's
    /// shutdown condition.
    fn globally_all_complete(&self, local_all_complete: bool) -> bool {
        match &self.shard {
            None => local_all_complete,
            Some(topo) => {
                local_all_complete
                    && self
                        .boards
                        .lock()
                        .unwrap()
                        .iter()
                        .all(|b| b.peers_complete(topo.spec.shard_id))
            }
        }
    }

    /// The loop proper. Each iteration: wait for readiness or the next
    /// sweep tick, drain the listener, advance ready connections, and
    /// fire timer events (deadline sweep + journal fsync).
    fn run(&mut self, sweep_interval: Duration) -> io::Result<()> {
        let listener_fd = self.listener.as_ref().unwrap().as_raw_fd();
        self.poller.register(listener_fd, true, false)?;
        let mut events: Vec<IoEvent> = Vec::new();
        let mut next_sweep = Instant::now() + sweep_interval;
        let mut done_since: Option<Instant> = None;

        loop {
            // Timer events fold into the same loop: the poll timeout is
            // exactly the time until the next sweep (bounded by the
            // shutdown grace once the campaign is done).
            if Instant::now() >= next_sweep {
                self.sweep_tick();
                next_sweep = Instant::now() + sweep_interval;
            }
            let done = self.done.load(Relaxed);
            if done {
                let since = done_since.get_or_insert_with(Instant::now);
                // Completion: stop accepting, linger through the grace
                // window answering `campaign_complete`, leave as soon
                // as every volunteer has said Bye. A sharded server
                // keeps its listener through the grace so peers that
                // have not yet heard this shard is complete can get one
                // more ack instead of a connection refusal.
                if self.shard.is_none() {
                    if let Some(listener) = self.listener.take() {
                        self.poller.deregister(listener.as_raw_fd())?;
                        drop(listener);
                    }
                }
                let drained = self.shard.is_none() && self.conns.is_empty();
                if drained || since.elapsed() > SHUTDOWN_GRACE {
                    return Ok(());
                }
            }
            let timeout = next_sweep.saturating_duration_since(Instant::now());
            self.poller.wait(Some(timeout), &mut events)?;

            // advance_conn takes each ready connection out of the map,
            // advances it, decides its fate, and puts it back.
            for ev in events.drain(..) {
                if ev.fd == listener_fd && self.listener.is_some() {
                    self.accept_ready()?;
                    continue;
                }
                self.advance_conn(ev);
            }
        }
    }

    /// One sweep tick: expire deadlines, settle the journal's fsync
    /// debt, and notice campaign completion.
    fn sweep_tick(&mut self) {
        let now = self.now();
        let mut g = self.grid.lock().unwrap();
        g.sweep(now);
        g.flush_journals();
        let local = g.all_complete();
        drop(g);
        if self.globally_all_complete(local) {
            self.done.store(true, Relaxed);
        }
    }

    /// Drains the listener: accept every pending connection, brushing
    /// off anything over the limit with a `Busy` frame.
    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            let (stream, _peer) = match self.listener.as_ref().unwrap().accept() {
                Ok(pair) => pair,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            };
            stream.set_nonblocking(true)?;
            let _ = stream.set_nodelay(true);
            let fd = stream.as_raw_fd();
            let limit = self.faults.max_connections;
            if limit > 0 && self.accepted_active >= limit {
                // Turned away before any frame is read: counted (and
                // telemetered) as a rejection, never as an accepted
                // connection. The Busy frame goes out in JSON — the
                // peer has not spoken yet, and v1 is what every agent
                // version can read.
                self.rejected += 1;
                let retry_after_ms = self.faults.backoff_base_ms.max(1) * 4;
                telemetry::emit(None, || Event::ConnectionRejected { retry_after_ms });
                let mut conn = Conn::new(stream, true);
                conn.write_buf.extend_from_slice(&encode_with(
                    &Message::Busy { retry_after_ms },
                    Codec::Json,
                ));
                conn.closing = Some("busy");
                self.install(fd, conn);
                continue;
            }
            self.connections += 1;
            self.accepted_active += 1;
            self.install(fd, Conn::new(stream, false));
        }
    }

    /// Flushes what it can, registers the connection, and retires it on
    /// the spot if it is already finished (e.g. a brush-off whose Busy
    /// frame fit in the socket buffer).
    fn install(&mut self, fd: i32, mut conn: Conn) {
        match conn.flush() {
            Ok(_) => {}
            Err(_) => {
                conn.closing.get_or_insert("io");
                self.retire(conn);
                return;
            }
        }
        if conn.closing.is_some() && conn.write_pos >= conn.write_buf.len() {
            self.retire(conn);
            return;
        }
        let interest = conn.wanted_interest();
        conn.interest = interest;
        if self.poller.register(fd, interest.0, interest.1).is_ok() {
            self.conns.insert(fd, conn);
        } else {
            conn.closing.get_or_insert("io");
            self.retire(conn);
        }
    }

    /// Advances one connection's state machine for a readiness event:
    /// read everything available, decode and dispatch every complete
    /// frame, flush queued replies, then update poller interest or
    /// retire the connection.
    fn advance_conn(&mut self, ev: IoEvent) {
        let Some(mut conn) = self.conns.remove(&ev.fd) else {
            return;
        };
        if ev.readable || ev.hangup {
            self.read_and_dispatch(&mut conn);
        }
        if conn.write_pos < conn.write_buf.len() && conn.flush().is_err() {
            conn.closing.get_or_insert("io");
            conn.write_buf.clear();
            conn.write_pos = 0;
        }
        let finished_flush = conn.write_pos >= conn.write_buf.len();
        if conn.closing.is_some() && finished_flush {
            let _ = self.poller.deregister(ev.fd);
            self.retire(conn);
            return;
        }
        if ev.hangup && conn.closing.is_none() {
            // Error/hangup with nothing left to read: the peer is gone.
            conn.closing = Some("eof");
            let _ = self.poller.deregister(ev.fd);
            self.retire(conn);
            return;
        }
        let wanted = conn.wanted_interest();
        if wanted != conn.interest {
            conn.interest = wanted;
            let _ = self.poller.reregister(ev.fd, wanted.0, wanted.1);
        }
        self.conns.insert(ev.fd, conn);
    }

    /// The read half of the state machine: drain the socket into the
    /// connection's buffer, then decode and dispatch every complete
    /// frame in it (an agent may pipeline several).
    fn read_and_dispatch(&mut self, conn: &mut Conn) {
        if conn.closing.is_some() || conn.brushoff {
            return;
        }
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.closing = Some("eof");
                    break;
                }
                Ok(n) => conn.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.closing = Some("io");
                    break;
                }
            }
        }
        let orderly_close = conn.closing;
        conn.closing = None;
        while conn.closing.is_none() {
            match decode_versioned(&conn.read_buf) {
                Ok((msg, consumed, codec)) => {
                    conn.read_buf.drain(..consumed);
                    conn.frames += 1;
                    conn.codec = codec;
                    match self.dispatch(&mut conn.agent, &mut conn.attached, msg, codec) {
                        Disposition::Reply(reply) => {
                            conn.write_buf
                                .extend_from_slice(&encode_with(&reply, codec));
                        }
                        Disposition::ReplyMany(replies) => {
                            for reply in replies {
                                conn.write_buf
                                    .extend_from_slice(&encode_with(&reply, codec));
                            }
                        }
                        Disposition::Close(reason) => conn.closing = Some(reason),
                    }
                }
                Err(DecodeError::Incomplete { .. }) => break,
                Err(_) => conn.closing = Some("protocol"),
            }
        }
        // An EOF/error noticed during the reads only takes effect after
        // every already-buffered frame has been dispatched.
        if conn.closing.is_none() {
            conn.closing = orderly_close;
        }
    }

    /// Maps one decoded frame to a scheduler call and a reply — the
    /// dispatch state of the per-connection machine. `codec` is the
    /// codec the frame arrived in: only v3 peers may be sent shard
    /// messages (a redirect would just confuse a v1/v2 agent).
    fn dispatch(
        &mut self,
        agent_id: &mut u64,
        attached: &mut Vec<bool>,
        msg: Message,
        codec: Codec,
    ) -> Disposition {
        let now = self.now();
        match msg {
            Message::Hello {
                agent,
                threads: _,
                campaigns,
            } => {
                *agent_id = agent;
                let grid = self.grid.lock().unwrap();
                *attached = grid.attach_mask(&campaigns);
                // The roster travels only when there is one worth
                // announcing; a solo registry keeps the v1–v3 shape
                // (recipe in `campaign`, no roster) byte for byte.
                let roster = if grid.len() > 1 {
                    grid.roster()
                } else {
                    Vec::new()
                };
                let params = grid.slots()[0].def.params;
                drop(grid);
                telemetry::emit(Some(now.seconds()), || Event::ConnectionOpened { agent });
                Disposition::Reply(Message::HelloAck {
                    protocol: PROTOCOL_VERSION,
                    campaign: params,
                    deadline_seconds: self.deadline_seconds,
                    campaigns: roster,
                })
            }
            Message::RequestWork => {
                let mask = self.attach_or_default(attached);
                let mut grid = self.grid.lock().unwrap();
                let (cidx, reply) = grid.fetch(now, *agent_id, &mask);
                Disposition::Reply(match reply {
                    WorkReply::Assigned(a) => {
                        let spec = grid.slots()[usize::from(cidx)].campaign.spec(a.workunit);
                        Message::Assignment {
                            replica: a.replica.0,
                            workunit: a.workunit,
                            receptor: spec.receptor.0,
                            ligand: spec.ligand.0,
                            isep_start: spec.isep_start,
                            positions: spec.positions,
                            deadline_seconds: self.deadline_seconds,
                            campaign: cidx,
                        }
                    }
                    WorkReply::Backoff {
                        retry_after_ms,
                        campaign_complete,
                    } => {
                        drop(grid);
                        if let Some(redirect) = self.try_redirect(codec, campaign_complete, &mask) {
                            redirect
                        } else {
                            Message::NoWork {
                                campaign_complete: self
                                    .globally_complete_for(campaign_complete, &mask),
                                retry_after_ms,
                            }
                        }
                    }
                })
            }
            Message::ResultReport {
                replica,
                workunit,
                campaign,
                output,
            } => {
                let mask = self.attach_or_default(attached);
                let mut grid = self.grid.lock().unwrap();
                let (_, disposition) =
                    grid.report(now, campaign, ReplicaId(replica), workunit, output);
                let attached_done = grid.attached_complete(&mask);
                let all_done = grid.all_complete();
                drop(grid);
                let campaign_complete = self.globally_complete_for(attached_done, &mask);
                if self.globally_all_complete(all_done) {
                    self.done.store(true, Relaxed);
                }
                Disposition::Reply(Message::ResultAck {
                    accepted: matches!(
                        disposition.verdict,
                        crate::state::Verdict::Accepted
                            | crate::state::Verdict::QuorumPending
                            | crate::state::Verdict::Late
                            | crate::state::Verdict::SpotConfirmed
                            | crate::state::Verdict::SpotVoid
                    ),
                    completed_workunit: disposition.completed_workunit,
                    campaign_complete,
                })
            }
            Message::ShardMapRequest => {
                let (shards, self_shard, addrs) = match &self.shard {
                    Some(topo) => (topo.spec.shards, topo.spec.shard_id, topo.addrs.clone()),
                    None => (1, 0, Vec::new()),
                };
                Disposition::Reply(Message::ShardMap {
                    shards,
                    self_shard,
                    addrs,
                })
            }
            Message::ShardStatus {
                shard,
                fresh_backlog,
                outstanding: _,
                complete,
                hungry,
                leases_held,
                campaign,
            } => self.handle_shard_status(
                now,
                campaign,
                shard,
                fresh_backlog,
                complete,
                hungry,
                leases_held,
            ),
            Message::Bye => Disposition::Close("bye"),
            // Server-to-agent and reply frames arriving here mean a
            // confused peer (LeaseGrant/StatusAck only ever travel as
            // replies on the steering connection).
            _ => Disposition::Close("protocol"),
        }
    }

    /// When this shard has nothing to issue but a peer advertises
    /// fresh backlog, answer a v3 agent's ask with a `Redirect` there
    /// instead of a backoff. The agent follows at most one redirect per
    /// ask, and the target was advertising work moments ago, so a
    /// bounce chain cannot form.
    fn try_redirect(
        &mut self,
        codec: Codec,
        local_complete: bool,
        attached: &[bool],
    ) -> Option<Message> {
        let topo = self.shard.as_ref()?;
        if !codec.shard_aware() || local_complete {
            return None;
        }
        {
            // A backoff with backlog still on hand was a trust denial
            // (quarantine), not a drained queue: the agent waits here.
            let g = self.grid.lock().unwrap();
            if g.attached_fresh_backlog(attached) > 0 {
                return None;
            }
        }
        // The peer worth bouncing to: the deepest advertised backlog
        // across every campaign this agent is attached to.
        let (cidx, peer) = {
            let bs = self.boards.lock().unwrap();
            bs.iter()
                .enumerate()
                .filter(|&(i, _)| attached.get(i).copied().unwrap_or(i == 0))
                .filter_map(|(i, b)| {
                    b.busiest_peer(topo.spec.shard_id)
                        .map(|(peer, backlog)| (i, peer, backlog))
                })
                .max_by_key(|&(_, _, backlog)| backlog)
                .map(|(i, peer, _)| (i, peer))?
        };
        let addr = topo.addrs.get(usize::from(peer))?.clone();
        self.grid.lock().unwrap().slots_mut()[cidx]
            .state
            .note_redirect();
        Some(Message::Redirect { shard: peer, addr })
    }

    /// Answers one inbound gossip frame: update the board, re-send any
    /// grant the sender has not adopted, cut a fresh lease if the
    /// sender is hungry and this shard has backlog to spare, and ack.
    /// The `LeaseOut` journal record is appended (inside the state
    /// lock) *before* the grant frame is queued, so a crash here can
    /// lose a sent grant only in the direction the re-send heals.
    #[allow(clippy::too_many_arguments)]
    fn handle_shard_status(
        &mut self,
        now: SimTime,
        campaign: u16,
        shard: u16,
        fresh_backlog: u64,
        complete: bool,
        hungry: bool,
        leases_held: Vec<u64>,
    ) -> Disposition {
        let Some(topo) = self.shard.clone() else {
            return Disposition::Close("protocol");
        };
        let me = topo.spec.shard_id;
        if shard >= topo.spec.shards || shard == me {
            return Disposition::Close("protocol");
        }
        let mut g = self.grid.lock().unwrap();
        let c = usize::from(campaign);
        if c >= g.len() {
            return Disposition::Close("protocol");
        }
        self.boards.lock().unwrap()[c].note(shard, complete, Some(fresh_backlog));
        let mut replies = Vec::new();
        let s = &mut g.slots_mut()[c].state;
        let local_complete = s.is_campaign_complete();
        // Re-send grants missing from the sender's holdings: our
        // journal says granted, theirs never said adopted — the grant
        // frame died with a connection or a crash. Idempotent on their
        // side, so over-sending is harmless.
        let held: HashSet<u64> = leases_held.into_iter().collect();
        for (lease, wus) in s.leases_granted_to(shard) {
            if !held.contains(&lease) {
                replies.push(Message::LeaseGrant {
                    lease,
                    from_shard: me,
                    wus,
                    complete: local_complete,
                    campaign,
                });
            }
        }
        if hungry && replies.is_empty() {
            if let Some((lease, wus)) = s.grant_lease(now, shard, LEASE_CHUNK) {
                replies.push(Message::LeaseGrant {
                    lease,
                    from_shard: me,
                    wus,
                    complete: local_complete,
                    campaign,
                });
            }
        }
        drop(g);
        replies.push(Message::StatusAck {
            shard: me,
            complete: local_complete,
        });
        Disposition::ReplyMany(replies)
    }

    /// The connection's attach mask, or the default-campaign mask for a
    /// peer that never said `Hello` (or said it before this registry
    /// grew — masks are sized at `Hello` time).
    fn attach_or_default(&self, attached: &[bool]) -> Vec<bool> {
        let len = self.grid.lock().unwrap().len();
        if attached.len() == len {
            attached.to_vec()
        } else {
            let mut mask = vec![false; len];
            mask[0] = true;
            mask
        }
    }

    /// Final close of a connection: emits the paired `ConnectionClosed`
    /// event (brush-offs were telemetered as rejections instead) and
    /// releases its limit slot.
    fn retire(&mut self, conn: Conn) {
        if !conn.brushoff {
            self.accepted_active -= 1;
            let reason = conn.closing.unwrap_or("eof");
            telemetry::emit(None, || Event::ConnectionClosed {
                agent: conn.agent,
                frames: conn.frames,
                reason: reason.into(),
            });
        }
        drop(conn);
    }
}

//! Property tests on the wire protocol: every frame kind round-trips
//! through encode→decode byte-exactly under both codecs (JSON v1 and
//! binary v2), the two codecs agree on message semantics, every
//! truncation is reported as `Incomplete`, oversized declared lengths
//! are rejected before any payload is read, and any flipped payload
//! byte fails the checksum. A final wire-level test pins the interop
//! promise: a v1-only agent against the v2 server only ever sees v1
//! reply frames, and still gets real work done.

use maxdo::{DockingOutput, DockingRow, EulerZyz, Vec3};
use netgrid::protocol::{
    decode_versioned, encode_with, CampaignParams, Codec, DecodeError, Message, HEADER_BYTES,
    MAGIC, MAX_FRAME_BYTES, PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Maps a sampled index onto a codec, so every property runs under both
/// wire formats.
fn pick_codec(i: usize) -> Codec {
    if i == 0 {
        Codec::Json
    } else {
        Codec::Binary
    }
}

/// Builds one message of each protocol kind from sampled primitives.
/// `kind` selects the variant; the other arguments fill its fields.
fn build_message(
    kind: usize,
    a: u64,
    b: u32,
    x: f64,
    flags: (bool, bool),
    rows: &[(u32, u32, f64, f64)],
) -> Message {
    match kind {
        0 => Message::Hello {
            agent: a,
            threads: b,
        },
        1 => Message::HelloAck {
            protocol: PROTOCOL_VERSION,
            campaign: CampaignParams {
                proteins: (b % 64).max(1),
                lib_seed: a,
                h_seconds: x.abs() + 1.0,
                separation_spacing: x.abs() / 2.0 + 1.0,
                max_iterations: b % 500 + 1,
            },
            deadline_seconds: x.abs(),
        },
        2 => Message::RequestWork,
        3 => Message::Assignment {
            replica: a,
            workunit: b,
            receptor: b % 7,
            ligand: b % 5,
            isep_start: b % 100 + 1,
            positions: b % 50 + 1,
            deadline_seconds: x.abs(),
        },
        4 => Message::NoWork {
            campaign_complete: flags.0,
            retry_after_ms: a % 10_000,
        },
        5 => Message::Busy {
            retry_after_ms: a % 10_000,
        },
        6 => Message::ResultReport {
            replica: a,
            workunit: b,
            output: DockingOutput {
                rows: rows
                    .iter()
                    .map(|&(isep, irot, e1, e2)| DockingRow {
                        isep,
                        irot,
                        position: Vec3::new(e1, e2, e1 - e2),
                        orientation: EulerZyz {
                            alpha: e1 / 10.0,
                            beta: e2 / 10.0,
                            gamma: (e1 + e2) / 10.0,
                        },
                        elj: e1,
                        eelec: e2,
                    })
                    .collect(),
                evaluations: a,
            },
        },
        7 => Message::ResultAck {
            accepted: flags.0,
            completed_workunit: flags.1,
            campaign_complete: flags.0 != flags.1,
        },
        _ => Message::Bye,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode→decode is the identity for every frame kind under both
    /// codecs, and decode consumes exactly the frame (trailing bytes
    /// untouched) and reports which codec it saw.
    #[test]
    fn encode_decode_identity(
        codec_pick in 0usize..2,
        kind in 0usize..9,
        a in 0u64..u64::MAX,
        b in 0u32..u32::MAX,
        x in -1.0e6f64..1.0e6,
        flags in ((0u8..2), (0u8..2)),
        rows in collection::vec((1u32..500, 1u32..22, -1.0e4f64..1.0e4, -1.0e4f64..1.0e4), 0..5),
        trailer in collection::vec(0u8..=255, 0..8),
    ) {
        let codec = pick_codec(codec_pick);
        let msg = build_message(kind, a, b, x, (flags.0 == 1, flags.1 == 1), &rows);
        let frame = encode_with(&msg, codec);
        prop_assert_eq!(frame[4], codec.version());
        let mut buf = frame.to_vec();
        buf.extend_from_slice(&trailer);
        let (back, consumed, seen) = decode_versioned(&buf).expect("well-formed frame must decode");
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(consumed, frame.len());
        prop_assert_eq!(seen, codec);
        // Idempotent: re-encoding the decoded message gives the same bytes.
        prop_assert_eq!(encode_with(&back, codec).as_ref(), frame.as_ref());
    }

    /// The two codecs carry identical semantics: a message encoded
    /// under v1 and under v2 decodes to the same `Message` — the
    /// cross-version equivalence the per-frame negotiation relies on.
    #[test]
    fn codecs_agree_on_every_message(
        kind in 0usize..9,
        a in 0u64..u64::MAX,
        b in 0u32..u32::MAX,
        x in -1.0e6f64..1.0e6,
        flags in ((0u8..2), (0u8..2)),
        rows in collection::vec((1u32..500, 1u32..22, -1.0e4f64..1.0e4, -1.0e4f64..1.0e4), 0..5),
    ) {
        let msg = build_message(kind, a, b, x, (flags.0 == 1, flags.1 == 1), &rows);
        let json_frame = encode_with(&msg, Codec::Json);
        let binary_frame = encode_with(&msg, Codec::Binary);
        let (from_json, _, c1) = decode_versioned(&json_frame).expect("v1 frame decodes");
        let (from_binary, _, c2) = decode_versioned(&binary_frame).expect("v2 frame decodes");
        prop_assert_eq!(c1, Codec::Json);
        prop_assert_eq!(c2, Codec::Binary);
        prop_assert_eq!(&from_json, &msg);
        prop_assert_eq!(&from_binary, &msg);
    }

    /// Every strict prefix of a valid frame — either codec — decodes to
    /// `Incomplete` with a positive byte count; never a panic, never a
    /// wrong message.
    #[test]
    fn any_truncation_is_incomplete(
        codec_pick in 0usize..2,
        kind in 0usize..9,
        a in 0u64..u64::MAX,
        b in 0u32..u32::MAX,
        x in -1.0e6f64..1.0e6,
        rows in collection::vec((1u32..500, 1u32..22, -1.0e4f64..1.0e4, -1.0e4f64..1.0e4), 0..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let codec = pick_codec(codec_pick);
        let msg = build_message(kind, a, b, x, (false, true), &rows);
        let frame = encode_with(&msg, codec);
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < frame.len());
        match decode_versioned(&frame[..cut]) {
            Err(DecodeError::Incomplete { needed }) => {
                prop_assert!(needed > 0);
                // The hint is honest: supplying that many bytes makes
                // progress past `Incomplete` at this cut point.
                prop_assert!(cut + needed <= frame.len());
            }
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
    }

    /// A header declaring more than MAX_FRAME_BYTES is rejected from the
    /// header alone under either version byte, whatever the declared
    /// length's value.
    #[test]
    fn oversized_length_rejected(version in 0usize..2, excess in 1u64..1_000_000) {
        let version = if version == 0 { PROTOCOL_V1 } else { PROTOCOL_V2 };
        let len = (MAX_FRAME_BYTES as u64 + excess).min(u64::from(u32::MAX)) as u32;
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(&MAGIC);
        header.push(version);
        header.extend_from_slice(&len.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        match decode_versioned(&header) {
            Err(DecodeError::Oversized { len: got }) => prop_assert_eq!(got, len as usize),
            other => prop_assert!(false, "declared {} gave {:?}", len, other),
        }
    }

    /// Any single flipped payload bit fails the checksum under either
    /// codec (or, for a frame-level mutation, some other decode error)
    /// — it never decodes as a valid message.
    #[test]
    fn flipped_payload_byte_never_decodes(
        codec_pick in 0usize..2,
        kind in 0usize..9,
        a in 0u64..u64::MAX,
        b in 0u32..u32::MAX,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let codec = pick_codec(codec_pick);
        let msg = build_message(kind, a, b, 1.5, (true, false), &[]);
        let mut frame = encode_with(&msg, codec).to_vec();
        let payload_len = frame.len() - HEADER_BYTES;
        prop_assume!(payload_len > 0);
        let idx = HEADER_BYTES + ((payload_len as f64) * byte_frac) as usize;
        prop_assume!(idx < frame.len());
        frame[idx] ^= 1 << bit;
        prop_assert!(
            matches!(decode_versioned(&frame), Err(DecodeError::Checksum { .. })),
            "flipping payload byte {} bit {} did not fail the checksum",
            idx,
            bit
        );
    }

    /// A corrupt collection-count prefix in a binary frame decodes to a
    /// clean `Payload` error — never a panic, and never a huge up-front
    /// allocation: counts beyond the payload remainder are rejected on
    /// sight, and counts within it cap the reader's reservation to the
    /// bytes actually present, so the worst a forged prefix buys is one
    /// frame's worth of memory.
    #[test]
    fn corrupt_count_prefix_never_panics_or_balloons(
        forged in 0u32..u32::MAX,
        shards in 1u16..8,
    ) {
        let addrs: Vec<String> = (0..shards)
            .map(|i| format!("127.0.0.1:{}", 7000 + i))
            .collect();
        let msg = Message::ShardMap {
            shards,
            self_shard: 0,
            addrs,
        };
        let frame = encode_with(&msg, Codec::BinaryV3);
        let mut payload = frame[HEADER_BYTES..].to_vec();
        let off = 1 + 2 + 2; // tag + shards + self_shard
        let original =
            u32::from_le_bytes(payload[off..off + 4].try_into().unwrap());
        prop_assume!(forged != original);
        payload[off..off + 4].copy_from_slice(&forged.to_le_bytes());
        let reframed = netgrid::protocol::frame_payload_versioned(
            netgrid::protocol::PROTOCOL_V3,
            &payload,
        );
        prop_assert!(
            matches!(decode_versioned(&reframed), Err(DecodeError::Payload(_))),
            "forged count {} (was {}) must be a Payload error",
            forged,
            original
        );
    }

    /// A v2 frame whose *payload* is garbage (checksum patched to match)
    /// is rejected as `Payload`, not misread as some other message —
    /// the strict binary decoder never guesses.
    #[test]
    fn patched_garbage_binary_payload_rejected(
        payload in collection::vec(0u8..=255, 1..64),
    ) {
        // Tag bytes used by the v2 codec are 0..=8; anything higher is
        // unconditionally garbage, and 0..=8 with random tails is
        // overwhelmingly malformed too — filter to the certain case.
        prop_assume!(payload[0] > 8);
        let frame = netgrid::protocol::frame_payload_versioned(PROTOCOL_V2, &payload);
        prop_assert!(
            matches!(decode_versioned(&frame), Err(DecodeError::Payload { .. })),
            "garbage payload must be rejected as Payload"
        );
    }
}

/// The per-frame negotiation promise, pinned at the socket level: an
/// old agent that only speaks protocol v1 talks to the v2 server,
/// *every* reply frame it receives carries version byte 1, and it still
/// completes real work — while a modern binary-codec agent works the
/// same campaign on the other socket.
#[test]
fn v1_only_agent_against_v2_server_stays_on_v1() {
    use netgrid::protocol::write_message;
    use netgrid::{run_agent, AgentConfig, NetCampaign, NetServer, NetServerConfig};
    use std::io::Read;
    use std::net::TcpStream;
    use std::time::Duration;

    let config = NetServerConfig {
        sweep_ms: 25,
        ..NetServerConfig::loopback(5.0)
    };
    let server = NetServer::bind(config).expect("bind");
    let addr = server.local_addr().expect("addr").to_string();
    let server = std::thread::spawn(move || server.run());

    // The modern half of the grid: a threaded agent on the binary codec
    // carries the campaign so the v1 session below never wedges waiting
    // for a quorum partner.
    let helper_addr = addr.clone();
    let helper = std::thread::spawn(move || {
        run_agent(AgentConfig {
            codec: Codec::Binary,
            ..AgentConfig::new(helper_addr, 901)
        })
    });

    // The legacy half: a hand-rolled v1-only session. It frames every
    // outgoing message with `write_message` (always protocol v1) and
    // inspects the raw version byte of every frame that comes back.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    write_message(
        &mut stream,
        &Message::Hello {
            agent: 902,
            threads: 1,
        },
    )
    .expect("hello");

    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    let mut campaign: Option<NetCampaign> = None;
    let mut assignments = 0u32;
    let mut accepted = 0u32;
    'session: loop {
        let n = stream.read(&mut chunk).expect("read");
        assert!(n > 0, "server closed the v1 session early");
        buf.extend_from_slice(&chunk[..n]);
        loop {
            match decode_versioned(&buf) {
                Ok((msg, consumed, codec)) => {
                    assert_eq!(
                        buf[4], PROTOCOL_V1,
                        "v1-only agent received a frame with version byte {}",
                        buf[4]
                    );
                    assert_eq!(codec, Codec::Json);
                    buf.drain(..consumed);
                    match msg {
                        Message::HelloAck {
                            campaign: params, ..
                        } => {
                            campaign = Some(NetCampaign::build(params));
                            write_message(&mut stream, &Message::RequestWork).expect("request");
                        }
                        Message::Assignment {
                            replica, workunit, ..
                        } => {
                            assignments += 1;
                            let campaign = campaign.as_ref().expect("HelloAck precedes work");
                            let output = campaign.compute(campaign.spec(workunit));
                            write_message(
                                &mut stream,
                                &Message::ResultReport {
                                    replica,
                                    workunit,
                                    output,
                                },
                            )
                            .expect("report");
                        }
                        Message::ResultAck {
                            accepted: ok,
                            campaign_complete,
                            ..
                        } => {
                            accepted += u32::from(ok);
                            if campaign_complete {
                                break 'session;
                            }
                            write_message(&mut stream, &Message::RequestWork).expect("request");
                        }
                        Message::NoWork {
                            campaign_complete, ..
                        } => {
                            if campaign_complete {
                                break 'session;
                            }
                            std::thread::sleep(Duration::from_millis(25));
                            write_message(&mut stream, &Message::RequestWork).expect("request");
                        }
                        Message::Busy { retry_after_ms } => {
                            std::thread::sleep(Duration::from_millis(retry_after_ms.min(100)));
                            write_message(&mut stream, &Message::RequestWork).expect("request");
                        }
                        other => panic!("unexpected server frame: {other:?}"),
                    }
                }
                Err(DecodeError::Incomplete { .. }) => break,
                Err(e) => panic!("undecodable server frame: {e:?}"),
            }
        }
    }
    let _ = write_message(&mut stream, &Message::Bye);
    drop(stream);

    helper.join().unwrap().expect("helper agent ran");
    let run = server.join().unwrap().expect("server ran");
    assert!(
        assignments > 0 && accepted > 0,
        "the v1 session must have done real work ({assignments} assignments, {accepted} accepted)"
    );
    assert!(
        !run.outputs.is_empty(),
        "campaign must have produced outputs"
    );
}

//! Property tests on the wire protocol: every frame kind round-trips
//! through encode→decode byte-exactly, every truncation is reported as
//! `Incomplete`, oversized declared lengths are rejected before any
//! payload is read, and any flipped payload byte fails the checksum.

use maxdo::{DockingOutput, DockingRow, EulerZyz, Vec3};
use netgrid::protocol::{
    decode, encode, CampaignParams, DecodeError, Message, HEADER_BYTES, MAGIC, MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
};
use proptest::prelude::*;

/// Builds one message of each protocol kind from sampled primitives.
/// `kind` selects the variant; the other arguments fill its fields.
fn build_message(
    kind: usize,
    a: u64,
    b: u32,
    x: f64,
    flags: (bool, bool),
    rows: &[(u32, u32, f64, f64)],
) -> Message {
    match kind {
        0 => Message::Hello {
            agent: a,
            threads: b,
        },
        1 => Message::HelloAck {
            protocol: PROTOCOL_VERSION,
            campaign: CampaignParams {
                proteins: (b % 64).max(1),
                lib_seed: a,
                h_seconds: x.abs() + 1.0,
                separation_spacing: x.abs() / 2.0 + 1.0,
                max_iterations: b % 500 + 1,
            },
            deadline_seconds: x.abs(),
        },
        2 => Message::RequestWork,
        3 => Message::Assignment {
            replica: a,
            workunit: b,
            receptor: b % 7,
            ligand: b % 5,
            isep_start: b % 100 + 1,
            positions: b % 50 + 1,
            deadline_seconds: x.abs(),
        },
        4 => Message::NoWork {
            campaign_complete: flags.0,
            retry_after_ms: a % 10_000,
        },
        5 => Message::Busy {
            retry_after_ms: a % 10_000,
        },
        6 => Message::ResultReport {
            replica: a,
            workunit: b,
            output: DockingOutput {
                rows: rows
                    .iter()
                    .map(|&(isep, irot, e1, e2)| DockingRow {
                        isep,
                        irot,
                        position: Vec3::new(e1, e2, e1 - e2),
                        orientation: EulerZyz {
                            alpha: e1 / 10.0,
                            beta: e2 / 10.0,
                            gamma: (e1 + e2) / 10.0,
                        },
                        elj: e1,
                        eelec: e2,
                    })
                    .collect(),
                evaluations: a,
            },
        },
        7 => Message::ResultAck {
            accepted: flags.0,
            completed_workunit: flags.1,
            campaign_complete: flags.0 != flags.1,
        },
        _ => Message::Bye,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// encode→decode is the identity for every frame kind, and decode
    /// consumes exactly the frame (trailing bytes untouched).
    #[test]
    fn encode_decode_identity(
        kind in 0usize..9,
        a in 0u64..u64::MAX,
        b in 0u32..u32::MAX,
        x in -1.0e6f64..1.0e6,
        flags in ((0u8..2), (0u8..2)),
        rows in collection::vec((1u32..500, 1u32..22, -1.0e4f64..1.0e4, -1.0e4f64..1.0e4), 0..5),
        trailer in collection::vec(0u8..=255, 0..8),
    ) {
        let msg = build_message(kind, a, b, x, (flags.0 == 1, flags.1 == 1), &rows);
        let frame = encode(&msg);
        let mut buf = frame.to_vec();
        buf.extend_from_slice(&trailer);
        let (back, consumed) = decode(&buf).expect("well-formed frame must decode");
        prop_assert_eq!(&back, &msg);
        prop_assert_eq!(consumed, frame.len());
        // Idempotent: re-encoding the decoded message gives the same bytes.
        prop_assert_eq!(encode(&back).as_ref(), frame.as_ref());
    }

    /// Every strict prefix of a valid frame decodes to `Incomplete` with
    /// a positive byte count — never a panic, never a wrong message.
    #[test]
    fn any_truncation_is_incomplete(
        kind in 0usize..9,
        a in 0u64..u64::MAX,
        b in 0u32..u32::MAX,
        x in -1.0e6f64..1.0e6,
        rows in collection::vec((1u32..500, 1u32..22, -1.0e4f64..1.0e4, -1.0e4f64..1.0e4), 0..4),
        cut_frac in 0.0f64..1.0,
    ) {
        let msg = build_message(kind, a, b, x, (false, true), &rows);
        let frame = encode(&msg);
        let cut = ((frame.len() as f64) * cut_frac) as usize;
        prop_assume!(cut < frame.len());
        match decode(&frame[..cut]) {
            Err(DecodeError::Incomplete { needed }) => {
                prop_assert!(needed > 0);
                // The hint is honest: supplying that many bytes makes
                // progress past `Incomplete` at this cut point.
                prop_assert!(cut + needed <= frame.len());
            }
            other => prop_assert!(false, "cut at {} gave {:?}", cut, other),
        }
    }

    /// A header declaring more than MAX_FRAME_BYTES is rejected from the
    /// header alone, whatever the declared length's value.
    #[test]
    fn oversized_length_rejected(excess in 1u64..1_000_000) {
        let len = (MAX_FRAME_BYTES as u64 + excess).min(u64::from(u32::MAX)) as u32;
        let mut header = Vec::with_capacity(HEADER_BYTES);
        header.extend_from_slice(&MAGIC);
        header.push(PROTOCOL_VERSION);
        header.extend_from_slice(&len.to_le_bytes());
        header.extend_from_slice(&0u64.to_le_bytes());
        match decode(&header) {
            Err(DecodeError::Oversized { len: got }) => prop_assert_eq!(got, len as usize),
            other => prop_assert!(false, "declared {} gave {:?}", len, other),
        }
    }

    /// Any single flipped payload bit fails the checksum (or, for a
    /// frame-level mutation, some other decode error) — it never decodes
    /// as a valid message.
    #[test]
    fn flipped_payload_byte_never_decodes(
        kind in 0usize..9,
        a in 0u64..u64::MAX,
        b in 0u32..u32::MAX,
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let msg = build_message(kind, a, b, 1.5, (true, false), &[]);
        let mut frame = encode(&msg).to_vec();
        let payload_len = frame.len() - HEADER_BYTES;
        prop_assume!(payload_len > 0);
        let idx = HEADER_BYTES + ((payload_len as f64) * byte_frac) as usize;
        prop_assume!(idx < frame.len());
        frame[idx] ^= 1 << bit;
        prop_assert!(
            matches!(decode(&frame), Err(DecodeError::Checksum { .. })),
            "flipping payload byte {} bit {} did not fail the checksum",
            idx,
            bit
        );
    }
}

//! Integration tests for the live observability endpoint: a loopback
//! campaign is scraped while it runs, and the scraped state must agree
//! with the final [`NetRunReport`]. Malformed requests must come back
//! as 4xx without touching scheduler state.

use netgrid::{http_get, run_agent, AgentConfig, NetRunReport, NetServer, NetServerConfig};
use std::net::SocketAddr;
use std::thread;
use std::time::{Duration, Instant};

/// Pulls the value of `series` (exact name + label text) out of a
/// Prometheus exposition document.
fn metric(body: &str, series: &str) -> Option<f64> {
    body.lines()
        .find(|l| l.starts_with(series) && l[series.len()..].starts_with(' '))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

fn ops_server(deadline_seconds: f64) -> NetServer {
    let config = NetServerConfig {
        ops_addr: Some("127.0.0.1:0".into()),
        ..NetServerConfig::loopback(deadline_seconds)
    };
    NetServer::bind(config).expect("bind server")
}

fn honest_fleet(addr: SocketAddr, n: u64) -> Vec<thread::JoinHandle<()>> {
    (1..=n)
        .map(|agent| {
            let addr = addr.to_string();
            thread::spawn(move || {
                run_agent(AgentConfig::new(addr, agent)).expect("agent finished");
            })
        })
        .collect()
}

#[test]
fn live_scrapes_agree_with_the_final_report() {
    let server = ops_server(10.0);
    let addr = server.local_addr().unwrap();
    let ops = server.ops_addr().expect("ops endpoint bound");

    // Scrape both routes as fast as the endpoint answers, holding on to
    // the last successful pair. The endpoint lingers ~1 s after the
    // campaign completes, so the final pair reflects the finished state.
    let scraper = thread::spawn(move || {
        let mut last: Option<(String, String)> = None;
        let mut successes = 0u32;
        let deadline = Instant::now() + Duration::from_secs(120);
        while Instant::now() < deadline {
            match (http_get(ops, "/metrics"), http_get(ops, "/")) {
                (Ok((200, metrics)), Ok((200, html))) => {
                    successes += 1;
                    last = Some((metrics, html));
                }
                _ if successes > 0 => break, // endpoint closed after the linger
                _ => {}
            }
            thread::sleep(Duration::from_millis(10));
        }
        (last, successes)
    });

    let agents = honest_fleet(addr, 3);
    let report: NetRunReport = server.run().expect("campaign run");
    for a in agents {
        a.join().unwrap();
    }
    let (last, successes) = scraper.join().unwrap();
    let (metrics, html) = last.expect("at least one successful scrape pair");
    assert!(successes >= 2, "expected repeated scrapes, got {successes}");

    // The last scrape saw the finished campaign: every workunit done,
    // and the counts agree with the run report.
    let wu = report.workunits as f64;
    assert_eq!(metric(&metrics, "hcmd_campaign_complete"), Some(1.0));
    assert_eq!(
        metric(&metrics, "hcmd_wu_states{state=\"total\"}"),
        Some(wu)
    );
    assert_eq!(metric(&metrics, "hcmd_wu_states{state=\"done\"}"), Some(wu));
    assert_eq!(
        metric(&metrics, "hcmd_wu_states{state=\"in_flight\"}"),
        Some(0.0)
    );
    assert_eq!(
        metric(&metrics, "hcmd_replicas_issued{cause=\"initial\"}"),
        Some(report.server_stats.initial_issues as f64)
    );
    assert_eq!(
        metric(&metrics, "hcmd_results_rejected{layer=\"quorum\"}"),
        Some(report.net_stats.quorum_rejected as f64)
    );
    let received = metric(&metrics, "hcmd_results_received").expect("results_received present");
    assert!(received >= wu, "at least one result per workunit");
    // Per-receptor series sum to the campaign totals.
    let receptor_done: f64 = metrics
        .lines()
        .filter(|l| l.starts_with("hcmd_receptor_workunits{") && l.contains("state=\"done\""))
        .filter_map(|l| l.rsplit(' ').next()?.parse::<f64>().ok())
        .sum();
    assert_eq!(receptor_done, wu);

    // The dashboard reflects the same finished state, self-contained.
    assert!(html.contains("status: complete"), "dashboard not final");
    assert!(html.contains(&format!("{}/{}", report.workunits, report.workunits)));
    for forbidden in ["http://", "https://", "src=", "href="] {
        assert!(!html.contains(forbidden), "external asset via {forbidden}");
    }
}

/// Regression guard for the accept path: the ops thread used to poll
/// its listener on a 10 ms sleep, so a scrape arriving just after the
/// poll ate a ~5 ms median wait before the endpoint even accepted.
/// Readiness-driven accepts answer in well under a millisecond; the
/// median over a burst of sequential scrapes must stay far below the
/// old sleep-quantum floor.
#[test]
fn scrape_latency_is_not_sleep_quantised() {
    let server = ops_server(10.0);
    let addr = server.local_addr().unwrap();
    let ops = server.ops_addr().expect("ops endpoint bound");
    let run = thread::spawn(move || server.run().expect("campaign run"));

    // Wait for the endpoint to come up, then measure sequential scrapes.
    loop {
        if let Ok((200, _)) = http_get(ops, "/metrics") {
            break;
        }
        thread::sleep(Duration::from_millis(10));
    }
    let mut latencies_ms: Vec<f64> = (0..40)
        .map(|_| {
            let start = Instant::now();
            let (status, _) = http_get(ops, "/metrics").expect("scrape");
            assert_eq!(status, 200);
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = latencies_ms[latencies_ms.len() / 2];
    assert!(
        median < 3.0,
        "median /metrics scrape took {median:.2} ms — the accept path \
         looks sleep-polled again (tail: {:?})",
        &latencies_ms[latencies_ms.len() - 4..]
    );

    let agents = honest_fleet(addr, 3);
    run.join().unwrap();
    for a in agents {
        a.join().unwrap();
    }
}

#[test]
fn malformed_requests_get_4xx_and_leave_scheduler_state_alone() {
    let server = ops_server(10.0);
    let addr = server.local_addr().unwrap();
    let ops = server.ops_addr().expect("ops endpoint bound");
    let run = thread::spawn(move || server.run().expect("campaign run"));

    // No agents yet: the scheduler is provably idle, so any change
    // between the two bracketing scrapes could only come from the
    // malformed requests themselves.
    let before = loop {
        if let Ok((200, body)) = http_get(ops, "/metrics") {
            break body;
        }
        thread::sleep(Duration::from_millis(10));
    };

    let (status, _) = http_get(ops, "/nope").unwrap();
    assert_eq!(status, 404);
    let long_path = format!("/{}", "a".repeat(4096));
    let (status, _) = http_get(ops, &long_path).unwrap();
    assert_eq!(status, 414);
    // Bad method: hand-rolled request, since http_get only speaks GET.
    {
        use std::io::{Read, Write};
        let mut s = std::net::TcpStream::connect(ops).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut raw = String::new();
        s.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 405"), "got: {raw}");
    }

    let (status, after) = http_get(ops, "/metrics").unwrap();
    assert_eq!(status, 200);
    // Scheduler families are untouched; only net.ops.* registry counters
    // (when telemetry is compiled in) may differ between the scrapes.
    let scheduler_lines = |body: &str| -> Vec<String> {
        body.lines()
            .filter(|l| l.starts_with("hcmd_") || l.contains(" hcmd_"))
            .filter(|l| !l.contains("server_clock"))
            .map(String::from)
            .collect()
    };
    assert_eq!(
        scheduler_lines(&before),
        scheduler_lines(&after),
        "malformed requests mutated scheduler state"
    );
    assert_eq!(metric(&after, "hcmd_results_received"), Some(0.0));

    // Now let the campaign actually finish so run() returns.
    let agents = honest_fleet(addr, 3);
    run.join().unwrap();
    for a in agents {
        a.join().unwrap();
    }
}

//! The paper-scale durability property at process level: `kill -9` a
//! live `hcmd-server` mid-campaign, restart it from `--journal`, and
//! the merged validated artifact is byte-identical to an uninterrupted
//! in-process run.
//!
//! This is the same contract `tests/netgrid_restart.rs` pins for a
//! scripted in-process history, but here the crash is a real SIGKILL of
//! a real daemon at an arbitrary instant, with real volunteer agents
//! riding through the restart gap on their reconnect loop. The CI
//! `netgrid-restart-smoke` job runs exactly this test.

use netgrid::{run_agent, AgentConfig, CampaignParams, NetCampaign};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hcmd-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reserves a loopback port both server generations will bind, so the
/// agents' reconnect loop carries them across the restart.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn spawn_server(addr: &str, journal: &PathBuf, out: Option<&PathBuf>) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hcmd-server"));
    cmd.args(["--addr", addr, "--deadline", "2"])
        .arg("--journal")
        .arg(journal)
        .args(["--fsync", "every=8", "--snapshot-every", "32"])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if let Some(path) = out {
        cmd.arg("--out").arg(path);
    }
    cmd.spawn().expect("spawn hcmd-server")
}

#[test]
fn sigkill_mid_campaign_then_restart_yields_the_baseline_artifact() {
    let dir = scratch("restart");
    let journal = dir.join("journal");
    let artifact = dir.join("artifact.json");
    let addr = format!("127.0.0.1:{}", free_port());

    let mut first = spawn_server(&addr, &journal, None);

    // Volunteers that survive the restart: generous reconnect budget
    // (50 ms between attempts) so the kill→rebind gap is routine.
    let agents: Vec<_> = (1..=3u64)
        .map(|agent| {
            let addr = addr.clone();
            thread::spawn(move || {
                run_agent(AgentConfig {
                    max_connect_attempts: 600,
                    ..AgentConfig::new(addr, agent)
                })
            })
        })
        .collect();

    // Let the campaign get properly underway, then SIGKILL — no flush,
    // no goodbye. (On a fast box the tiny campaign may already have
    // finished; the restart path below must cope with that too, by
    // recovering a complete state and exiting immediately.)
    thread::sleep(Duration::from_millis(1200));
    let _ = first.kill(); // SIGKILL on unix
    first.wait().expect("reap first server");

    let mut second = spawn_server(&addr, &journal, Some(&artifact));
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match second.try_wait().expect("poll second server") {
            Some(status) => {
                assert!(status.success(), "restarted server failed: {status}");
                break;
            }
            None if Instant::now() > deadline => {
                let _ = second.kill();
                panic!("restarted server did not finish the campaign in time");
            }
            None => thread::sleep(Duration::from_millis(100)),
        }
    }
    for a in agents {
        a.join().unwrap().expect("agent survived the restart");
    }

    let merged = std::fs::read_to_string(&artifact).expect("artifact written");
    let baseline =
        serde_json::to_string(&NetCampaign::build(CampaignParams::tiny()).baseline_outputs())
            .unwrap();
    assert_eq!(
        merged, baseline,
        "kill -9 + restart must converge to the byte-identical artifact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

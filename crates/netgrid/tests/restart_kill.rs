//! The paper-scale durability property at process level: `kill -9` a
//! live `hcmd-server` mid-campaign, restart it from `--journal`, and
//! the merged validated artifact is byte-identical to an uninterrupted
//! in-process run.
//!
//! This is the same contract `tests/netgrid_restart.rs` pins for a
//! scripted in-process history, but here the crash is a real SIGKILL of
//! a real daemon at an arbitrary instant, with real volunteer agents
//! riding through the restart gap on their reconnect loop. The CI
//! `netgrid-restart-smoke` job runs exactly this test.

use maxdo::DockingOutput;
use netgrid::{
    merge_artifact_json, run_agent, AgentConfig, AgentTrust, CampaignParams, FaultProfile,
    NetCampaign,
};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::thread;
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hcmd-kill-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Reserves a loopback port both server generations will bind, so the
/// agents' reconnect loop carries them across the restart.
fn free_port() -> u16 {
    TcpListener::bind("127.0.0.1:0")
        .unwrap()
        .local_addr()
        .unwrap()
        .port()
}

fn spawn_server(addr: &str, journal: &PathBuf, out: Option<&PathBuf>) -> Child {
    spawn_server_with(addr, journal, out, &[])
}

fn spawn_server_with(
    addr: &str,
    journal: &PathBuf,
    out: Option<&PathBuf>,
    extra: &[&str],
) -> Child {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hcmd-server"));
    cmd.args(["--addr", addr, "--deadline", "2"])
        .arg("--journal")
        .arg(journal)
        .args(["--fsync", "every=8", "--snapshot-every", "32"])
        .args(extra)
        .stdout(Stdio::null())
        .stderr(Stdio::inherit());
    if let Some(path) = out {
        cmd.arg("--out").arg(path);
    }
    cmd.spawn().expect("spawn hcmd-server")
}

#[test]
fn sigkill_mid_campaign_then_restart_yields_the_baseline_artifact() {
    let dir = scratch("restart");
    let journal = dir.join("journal");
    let artifact = dir.join("artifact.json");
    let addr = format!("127.0.0.1:{}", free_port());

    let mut first = spawn_server(&addr, &journal, None);

    // Volunteers that survive the restart: generous reconnect budget
    // (50 ms between attempts) so the kill→rebind gap is routine.
    let agents: Vec<_> = (1..=3u64)
        .map(|agent| {
            let addr = addr.clone();
            thread::spawn(move || {
                run_agent(AgentConfig {
                    max_connect_attempts: 600,
                    ..AgentConfig::new(addr, agent)
                })
            })
        })
        .collect();

    // Let the campaign get properly underway, then SIGKILL — no flush,
    // no goodbye. (On a fast box the tiny campaign may already have
    // finished; the restart path below must cope with that too, by
    // recovering a complete state and exiting immediately.)
    thread::sleep(Duration::from_millis(1200));
    let _ = first.kill(); // SIGKILL on unix
    first.wait().expect("reap first server");

    let mut second = spawn_server(&addr, &journal, Some(&artifact));
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match second.try_wait().expect("poll second server") {
            Some(status) => {
                assert!(status.success(), "restarted server failed: {status}");
                break;
            }
            None if Instant::now() > deadline => {
                let _ = second.kill();
                panic!("restarted server did not finish the campaign in time");
            }
            None => thread::sleep(Duration::from_millis(100)),
        }
    }
    for a in agents {
        a.join().unwrap().expect("agent survived the restart");
    }

    let merged = std::fs::read_to_string(&artifact).expect("artifact written");
    let baseline =
        serde_json::to_string(&NetCampaign::build(CampaignParams::tiny()).baseline_outputs())
            .unwrap();
    assert_eq!(
        merged, baseline,
        "kill -9 + restart must converge to the byte-identical artifact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The sharding variant: two journaled shards carry one campaign, every
/// agent sits on shard 1 so shard 0's work can only move by lease (or
/// agents by redirect), and a SIGKILL lands on shard 0 mid-stream —
/// plausibly mid-lease. The restarted shard 0 must replay its `LeaseOut`
/// records to a consistent ownership picture: the per-shard artifacts
/// stay disjoint (no workunit validated by both shards, i.e. nobody
/// double-issued a leased range) and their merge is byte-identical to
/// the single-server baseline.
#[test]
fn sigkill_one_shard_mid_lease_then_restart_keeps_ownership_consistent() {
    let dir = scratch("shard");
    let journals = [dir.join("journal0"), dir.join("journal1")];
    let artifacts = [dir.join("artifact0.json"), dir.join("artifact1.json")];
    let addrs = [
        format!("127.0.0.1:{}", free_port()),
        format!("127.0.0.1:{}", free_port()),
    ];
    let peers = addrs.join(",");
    let shard_flags = |id: &str| -> Vec<String> {
        vec![
            "--shard-id".into(),
            id.into(),
            "--shards".into(),
            "2".into(),
            "--peers".into(),
            peers.clone(),
        ]
    };
    let spawn_shard = |id: usize| -> Child {
        let flags = shard_flags(&id.to_string());
        let flags: Vec<&str> = flags.iter().map(String::as_str).collect();
        spawn_server_with(&addrs[id], &journals[id], Some(&artifacts[id]), &flags)
    };

    let mut shard0 = spawn_shard(0);
    let mut shard1 = spawn_shard(1);

    // Every volunteer on shard 1: shard 0 has zero demand of its own.
    let agents: Vec<_> = (1..=3u64)
        .map(|agent| {
            let addr = addrs[1].clone();
            thread::spawn(move || {
                run_agent(AgentConfig {
                    max_connect_attempts: 600,
                    ..AgentConfig::new(addr, agent)
                })
            })
        })
        .collect();

    // Long enough for shard 1 to drain its own slice and start pulling
    // leases out of shard 0; the assertions below hold wherever in that
    // stream the kill actually lands.
    thread::sleep(Duration::from_millis(2500));
    if shard0.try_wait().expect("poll shard 0").is_none() {
        let _ = shard0.kill(); // SIGKILL on unix
        shard0.wait().expect("reap shard 0");
        shard0 = spawn_shard(0);
    }

    let deadline = Instant::now() + Duration::from_secs(120);
    for (name, child) in [("shard 0", &mut shard0), ("shard 1", &mut shard1)] {
        loop {
            match child.try_wait().expect("poll shard") {
                Some(status) => {
                    assert!(status.success(), "{name} failed: {status}");
                    break;
                }
                None if Instant::now() > deadline => {
                    let _ = child.kill();
                    panic!("{name} did not finish the campaign in time");
                }
                None => thread::sleep(Duration::from_millis(100)),
            }
        }
    }
    for a in agents {
        a.join().unwrap().expect("agent survived the restart");
    }

    let parts: Vec<String> = artifacts
        .iter()
        .map(|p| std::fs::read_to_string(p).expect("partial artifact written"))
        .collect();

    // Ownership stayed disjoint across the kill: no workunit was
    // validated (and therefore issued) by both shards.
    let parsed: Vec<Vec<Option<DockingOutput>>> = parts
        .iter()
        .map(|t| serde_json::from_str(t).expect("partial parses"))
        .collect();
    for wu in 0..parsed[0].len() {
        let owners = parsed.iter().filter(|p| p[wu].is_some()).count();
        assert_eq!(
            owners, 1,
            "workunit {wu} validated by {owners} shards — a leased range was double-issued"
        );
    }

    let merged = merge_artifact_json(&parts).expect("partials cover the campaign");
    let baseline =
        serde_json::to_string(&NetCampaign::build(CampaignParams::tiny()).baseline_outputs())
            .unwrap();
    assert_eq!(
        merged, baseline,
        "kill -9 of one shard must not perturb the merged artifact"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The trust variant: a saboteur fleet member corrupts every payload,
/// the campaign runs with `--trust on`, and a SIGKILL lands in the
/// middle. The restarted server must replay the accept/reject ledger
/// from the journal — the saboteur's quarantine survives the crash —
/// and the merged artifact must still be byte-identical to the
/// baseline, because corrupt results never validate: the saboteur is
/// never trusted with singles, and any spot check it poisons only
/// forces an honest re-replication.
///
/// The exact-determinism version of this property (identical trust
/// tables for crashed and uninterrupted runs of one scripted history)
/// is pinned in `tests/netgrid_restart.rs`; wall-clock scheduling makes
/// the process-level assertions deliberately coarser.
#[test]
fn sigkill_with_saboteur_under_trust_keeps_quarantine_and_artifact() {
    let dir = scratch("trust");
    let journal = dir.join("journal");
    let artifact = dir.join("artifact.json");
    let trust_state = dir.join("trust.json");
    let addr = format!("127.0.0.1:{}", free_port());
    let trust_flags = [
        "--trust",
        "on",
        "--trust-state-out",
        trust_state.to_str().unwrap(),
    ];

    let mut first = spawn_server_with(&addr, &journal, None, &trust_flags);

    let honest: Vec<_> = (1..=3u64)
        .map(|agent| {
            let addr = addr.clone();
            thread::spawn(move || {
                run_agent(AgentConfig {
                    max_connect_attempts: 600,
                    ..AgentConfig::new(addr, agent)
                })
            })
        })
        .collect();
    let saboteur = {
        let addr = addr.clone();
        thread::spawn(move || {
            run_agent(AgentConfig {
                max_connect_attempts: 600,
                profile: FaultProfile::saboteur(),
                ..AgentConfig::new(addr, 9)
            })
        })
    };

    thread::sleep(Duration::from_millis(1200));
    let _ = first.kill(); // SIGKILL on unix
    first.wait().expect("reap first server");

    let mut second = spawn_server_with(&addr, &journal, Some(&artifact), &trust_flags);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match second.try_wait().expect("poll second server") {
            Some(status) => {
                assert!(status.success(), "restarted server failed: {status}");
                break;
            }
            None if Instant::now() > deadline => {
                let _ = second.kill();
                panic!("restarted server did not finish the campaign in time");
            }
            None => thread::sleep(Duration::from_millis(100)),
        }
    }
    for a in honest {
        a.join()
            .unwrap()
            .expect("honest agent survived the restart");
    }
    // The saboteur may still be serving quarantine when the finished
    // server's shutdown grace expires; either exit path is fine — the
    // trust ledger on disk is the assertion.
    let _ = saboteur.join().unwrap();

    let table: Vec<(u64, AgentTrust)> =
        serde_json::from_str(&std::fs::read_to_string(&trust_state).expect("trust state written"))
            .expect("trust state parses");
    let nine = table
        .iter()
        .find(|(agent, _)| *agent == 9)
        .map(|(_, t)| *t)
        .expect("saboteur has a ledger entry");
    assert!(
        nine.quarantine_count >= 1,
        "saboteur quarantine must survive the restart: {nine:?}"
    );
    assert_eq!(nine.accepted, 0, "no corrupt result ever validated");

    let merged = std::fs::read_to_string(&artifact).expect("artifact written");
    let baseline =
        serde_json::to_string(&NetCampaign::build(CampaignParams::tiny()).baseline_outputs())
            .unwrap();
    assert_eq!(
        merged, baseline,
        "a saboteur under trust must not perturb the artifact across a kill -9"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

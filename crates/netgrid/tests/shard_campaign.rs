//! Multi-server sharding, end to end on loopback: N `NetServer` shards
//! carry one campaign, agents are steered between them, work moves by
//! lease, and the merged artifact is byte-identical to a single-server
//! run.
//!
//! Also pins the steering edge cases the design leans on:
//! * duplicate gossip frames re-apply the same lease (no double grant);
//! * a lease missing from the lessee's `leases_held` advertisement is
//!   re-sent verbatim, never re-cut;
//! * shard A's journal refuses to replay into a server configured as
//!   shard B (or as a solo server).
//!
//! The SIGKILL-mid-lease variant lives in `restart_kill.rs`; the
//! agent-side redirect-loop guard is a unit test in `agent.rs`.

use gridsim::server::ServerConfig;
use netgrid::protocol::{read_message, write_message_with};
use netgrid::shard::ownership_map;
use netgrid::{
    merge_artifacts, open_journaled, run_agent, run_mux_fleet, AgentConfig, CampaignParams, Codec,
    FsyncPolicy, JournalConfig, Message, MuxFleetConfig, NetCampaign, NetRunReport, NetServer,
    NetServerConfig, ServerFaults, ShardSpec, ShardTopology, TrustConfig,
};
use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::Duration;

/// Reserves `n` distinct loopback addresses. All listeners are held
/// until every port is known, then dropped together — the usual
/// reserve-then-rebind test pattern.
fn free_addrs(n: u16) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().unwrap().to_string())
        .collect()
}

/// Binds every shard of an N-server topology over one tiny campaign.
/// Returns the join handles and the shared address list.
fn bind_shards(
    shards: u16,
    trust: bool,
) -> (
    Vec<thread::JoinHandle<std::io::Result<NetRunReport>>>,
    Vec<String>,
    CampaignParams,
) {
    let addrs = free_addrs(shards);
    let mut params = None;
    let handles = (0..shards)
        .map(|shard_id| {
            let mut config = NetServerConfig {
                sweep_ms: 25,
                ..NetServerConfig::loopback(5.0)
            };
            if trust {
                config.faults.trust = TrustConfig::on();
            }
            config.addr = addrs[shard_id as usize].clone();
            config.shard = Some(ShardTopology {
                spec: ShardSpec { shard_id, shards },
                addrs: addrs.clone(),
            });
            params = Some(config.campaign);
            let server = NetServer::bind(config).expect("bind shard");
            thread::spawn(move || server.run())
        })
        .collect();
    (handles, addrs, params.unwrap())
}

/// Runs a fleet round-robined across every shard, joins the servers,
/// and asserts the merged artifact is byte-identical to the baseline
/// (which single-server runs are already held to elsewhere).
fn run_sharded_campaign(shards: u16, trust: bool) -> Vec<NetRunReport> {
    let (handles, addrs, params) = bind_shards(shards, trust);

    let fleet = run_mux_fleet(MuxFleetConfig {
        seed: 7,
        addrs: addrs.clone(),
        timeout: Duration::from_secs(120),
        ..MuxFleetConfig::new(addrs[0].clone(), 8)
    })
    .expect("fleet ran");
    assert!(fleet.saw_completion, "fleet should see global completion");

    let reports: Vec<NetRunReport> = handles
        .into_iter()
        .map(|h| h.join().unwrap().expect("shard ran"))
        .collect();

    for (i, r) in reports.iter().enumerate() {
        assert_eq!(
            r.shard,
            ShardSpec {
                shard_id: i as u16,
                shards
            }
        );
        assert!(r.outputs.is_empty(), "sharded runs publish partials only");
    }
    let parts: Vec<_> = reports.iter().map(|r| r.partial_outputs.clone()).collect();
    let merged = merge_artifacts(&parts).expect("shards cover the campaign");
    let baseline = NetCampaign::build(params).baseline_outputs();
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        serde_json::to_string(&baseline).unwrap(),
        "{shards}-shard merge must be byte-identical to the single-server artifact"
    );
    reports
}

#[test]
fn two_shard_campaign_merges_byte_identical_to_single_server() {
    let reports = run_sharded_campaign(2, false);
    // The explicit single-server comparison, not just the baseline: a
    // lone server over the same recipe must produce the same bytes the
    // merge did.
    let config = NetServerConfig {
        sweep_ms: 25,
        ..NetServerConfig::loopback(5.0)
    };
    let solo = NetServer::bind(config).expect("bind solo");
    let addr = solo.local_addr().expect("addr").to_string();
    let solo = thread::spawn(move || solo.run());
    let fleet = run_mux_fleet(MuxFleetConfig {
        seed: 7,
        timeout: Duration::from_secs(120),
        ..MuxFleetConfig::new(addr, 8)
    })
    .expect("solo fleet ran");
    assert!(fleet.saw_completion);
    let solo = solo.join().unwrap().expect("solo ran");

    let parts: Vec<_> = reports.iter().map(|r| r.partial_outputs.clone()).collect();
    let merged = merge_artifacts(&parts).unwrap();
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        serde_json::to_string(&solo.outputs).unwrap(),
        "sharded merge vs. an actual single-server run"
    );
}

#[test]
fn four_shard_campaign_merges_byte_identical() {
    let reports = run_sharded_campaign(4, false);
    // Leases never appear from nowhere: nothing adopted that was not
    // granted, workunit for workunit.
    let out: u64 = reports
        .iter()
        .map(|r| r.net_stats.shard_wus_leased_out)
        .sum();
    let adopted: u64 = reports
        .iter()
        .map(|r| r.net_stats.shard_wus_leased_in)
        .sum();
    assert!(
        adopted <= out,
        "adopted {adopted} leased workunits but only {out} were granted"
    );
}

#[test]
fn two_shard_campaign_under_trust_merges_byte_identical() {
    let reports = run_sharded_campaign(2, true);
    // Trust is scoped per shard by design (DESIGN.md §6): each shard
    // keeps its own ledger over the agents it served.
    for r in &reports {
        assert!(r.trust.is_some(), "trust summary present on every shard");
    }
}

/// Every agent parked on shard 0: the campaign can only finish if
/// steering moves shard 1's work to where the demand is (leases) or
/// moves the demand to the work (redirects, the agents speak v3).
#[test]
fn agents_on_one_shard_finish_the_campaign_via_steering() {
    let (handles, addrs, params) = bind_shards(2, false);

    let agents: Vec<_> = (1..=3u64)
        .map(|agent| {
            let addr = addrs[0].clone();
            thread::spawn(move || {
                run_agent(AgentConfig {
                    max_connect_attempts: 600,
                    ..AgentConfig::new(addr, agent)
                })
            })
        })
        .collect();

    let reports: Vec<NetRunReport> = handles
        .into_iter()
        .map(|h| h.join().unwrap().expect("shard ran"))
        .collect();
    let mut redirects_followed = 0;
    for a in agents {
        let r = a.join().unwrap().expect("agent finished");
        assert!(r.saw_completion, "every agent sees global completion");
        redirects_followed += r.redirects_followed;
    }

    let steered = reports[0].net_stats.shard_leases_in
        + reports[1].net_stats.shard_leases_out
        + reports[0].net_stats.shard_redirects;
    assert!(
        steered > 0,
        "an agentless shard's work must move by lease or redirect: {:?} / {:?}",
        reports[0].net_stats,
        reports[1].net_stats
    );
    assert_eq!(
        redirects_followed, reports[0].net_stats.shard_redirects,
        "every redirect the server issued was followed exactly once"
    );

    let parts: Vec<_> = reports.iter().map(|r| r.partial_outputs.clone()).collect();
    let merged = merge_artifacts(&parts).expect("covered");
    let baseline = NetCampaign::build(params).baseline_outputs();
    assert_eq!(
        serde_json::to_string(&merged).unwrap(),
        serde_json::to_string(&baseline).unwrap()
    );
}

/// Plays shard 1 by hand against a live shard 0 and pins the lease
/// idempotence contract frame by frame:
/// * a hungry status with an empty `leases_held` draws one grant;
/// * repeating it (duplicate gossip / lost adoption) re-sends the SAME
///   grant — same lease id, same workunits — and cuts nothing new;
/// * advertising the lease as held draws the NEXT grant, disjoint from
///   the first.
#[test]
fn duplicate_gossip_resends_the_same_lease_never_a_new_one() {
    let addrs = free_addrs(2);
    let mut config = NetServerConfig {
        sweep_ms: 25,
        ..NetServerConfig::loopback(5.0)
    };
    config.addr = addrs[0].clone();
    config.shard = Some(ShardTopology {
        spec: ShardSpec {
            shard_id: 0,
            shards: 2,
        },
        addrs: addrs.clone(),
    });
    let params = config.campaign;
    let server = NetServer::bind(config).expect("bind shard 0");
    let server = thread::spawn(move || server.run());

    let mut stream = TcpStream::connect(&addrs[0]).expect("connect to shard 0");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // One gossip exchange: send our status, collect replies through the
    // closing StatusAck.
    let mut gossip = |held: Vec<u64>, complete: bool| -> Vec<(u64, Vec<u32>)> {
        write_message_with(
            &mut stream,
            &Message::ShardStatus {
                shard: 1,
                fresh_backlog: 0,
                outstanding: 0,
                complete,
                hungry: !complete,
                leases_held: held,
            },
            Codec::BinaryV3,
        )
        .expect("send status");
        let mut grants = Vec::new();
        loop {
            match read_message(&mut stream).expect("read reply") {
                Some(Message::LeaseGrant { lease, wus, .. }) => grants.push((lease, wus)),
                Some(Message::StatusAck { shard, .. }) => {
                    assert_eq!(shard, 0);
                    return grants;
                }
                other => panic!("unexpected steering reply: {other:?}"),
            }
        }
    };

    let first = gossip(Vec::new(), false);
    assert_eq!(first.len(), 1, "hungry status draws one grant");
    let (lease1, wus1) = first[0].clone();
    assert!(!wus1.is_empty());

    // Duplicate gossip frame: same empty `leases_held`. The grantor
    // must conclude the grant was lost and re-send it verbatim.
    let dup = gossip(Vec::new(), false);
    assert_eq!(dup, first, "duplicate gossip re-sends, never re-cuts");

    // Adoption acknowledged: the next hunger draws the next lease,
    // disjoint from the first.
    let mut held = vec![lease1];
    let mut leased: Vec<u32> = wus1.clone();
    loop {
        let grants = gossip(held.clone(), false);
        if grants.is_empty() {
            break; // shard 0's fresh backlog is drained
        }
        for (lease, wus) in grants {
            assert!(!held.contains(&lease), "every grant has a fresh lease id");
            for wu in &wus {
                assert!(
                    !leased.contains(wu),
                    "workunit {wu} leased twice (leases {held:?} then {lease:#x})"
                );
            }
            held.push(lease);
            leased.extend(wus);
        }
    }

    // We leased away shard 0's entire slice, so it is complete; tell it
    // we are too and let it shut down.
    let campaign = NetCampaign::build(params);
    let owned = ownership_map(
        &campaign,
        ShardSpec {
            shard_id: 0,
            shards: 2,
        },
    );
    let mut expected: Vec<u32> = owned
        .iter()
        .enumerate()
        .filter(|(_, &o)| o)
        .map(|(i, _)| i as u32)
        .collect();
    let mut got = leased.clone();
    expected.sort_unstable();
    got.sort_unstable();
    assert_eq!(got, expected, "leases drained exactly shard 0's slice");

    let final_ack = gossip(held.clone(), true);
    assert!(final_ack.is_empty());
    drop(stream);

    let report = server.join().unwrap().expect("shard 0 ran");
    assert_eq!(report.net_stats.shard_leases_out, held.len() as u64);
    assert_eq!(report.net_stats.shard_wus_leased_out, leased.len() as u64);
    assert_eq!(report.net_stats.shard_leases_in, 0);
}

/// Shard identity is part of the journal header: a WAL written as one
/// shard refuses to replay into a server configured as another shard,
/// another topology width, or a solo server.
#[test]
fn journal_of_one_shard_refuses_replay_into_another() {
    let dir = std::env::temp_dir().join(format!("hcmd-shard-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = JournalConfig {
        fsync: FsyncPolicy::Always,
        ..JournalConfig::new(&dir)
    };
    let campaign = NetCampaign::build(CampaignParams::tiny());
    let sc = ServerConfig {
        deadline_seconds: 5.0,
        ..ServerConfig::default()
    };
    let shard0 = ShardSpec {
        shard_id: 0,
        shards: 2,
    };

    let opened = open_journaled(&cfg, &campaign, sc, ServerFaults::default(), shard0)
        .expect("fresh shard-0 journal opens");
    drop(opened);

    // Same shard, same topology: replays fine.
    let reopened = open_journaled(&cfg, &campaign, sc, ServerFaults::default(), shard0);
    assert!(reopened.is_ok(), "shard 0 reopens its own journal");
    drop(reopened);

    for (what, wrong) in [
        (
            "sibling shard",
            ShardSpec {
                shard_id: 1,
                shards: 2,
            },
        ),
        (
            "wider topology",
            ShardSpec {
                shard_id: 0,
                shards: 4,
            },
        ),
        ("solo server", ShardSpec::solo()),
    ] {
        let err = match open_journaled(&cfg, &campaign, sc, ServerFaults::default(), wrong) {
            Ok(_) => panic!("{what} must refuse shard 0's journal"),
            Err(e) => e,
        };
        assert!(
            err.to_string().contains("refusing to replay"),
            "{what}: {err}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

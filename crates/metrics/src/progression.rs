//! Per-protein campaign progression — the Figure 7 view.
//!
//! Figure 7 of the paper shows, at four dates, the proteins on the X axis
//! (sorted by launch order) against the cumulative percentage of total
//! computation on the Y axis, split into a computed (green) and remaining
//! (red) part. Its headline observation: on 2007-05-02, 85 % of the
//! proteins were fully docked but that represented only 47 % of the total
//! computation — because per-protein cost is extremely skewed.

use serde::{Deserialize, Serialize};

/// Progress of one receptor protein's docking work at a snapshot instant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProteinProgress {
    /// Index of the protein in launch order.
    pub protein: usize,
    /// Total CPU seconds this protein's couples require (reference CPU).
    pub total_work: f64,
    /// CPU seconds of that work already completed.
    pub done_work: f64,
}

impl ProteinProgress {
    /// Fraction of this protein's work completed, in `[0, 1]`.
    pub fn fraction_done(&self) -> f64 {
        if self.total_work <= 0.0 {
            1.0
        } else {
            (self.done_work / self.total_work).clamp(0.0, 1.0)
        }
    }

    /// Whether the protein is fully docked.
    pub fn is_complete(&self) -> bool {
        self.fraction_done() >= 1.0 - 1e-9
    }
}

/// A Figure-7 style snapshot: the progression state of every protein at one
/// instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProgressionSnapshot {
    /// Label for the snapshot (the paper uses dates like `05-02-07`).
    pub label: String,
    /// One entry per protein, in launch order.
    pub proteins: Vec<ProteinProgress>,
}

impl ProgressionSnapshot {
    /// Creates a snapshot; proteins must already be in launch order.
    pub fn new(label: impl Into<String>, proteins: Vec<ProteinProgress>) -> Self {
        Self {
            label: label.into(),
            proteins,
        }
    }

    /// Fraction of proteins fully docked (the "85 % of the proteins" axis).
    pub fn fraction_proteins_complete(&self) -> f64 {
        if self.proteins.is_empty() {
            return 0.0;
        }
        self.proteins.iter().filter(|p| p.is_complete()).count() as f64 / self.proteins.len() as f64
    }

    /// Fraction of total computation completed (the "only 47 % of the
    /// total computation" axis).
    pub fn fraction_work_complete(&self) -> f64 {
        let total: f64 = self.proteins.iter().map(|p| p.total_work).sum();
        if total <= 0.0 {
            return 0.0;
        }
        self.proteins
            .iter()
            .map(|p| p.done_work.min(p.total_work))
            .sum::<f64>()
            / total
    }

    /// The cumulative-percentage curve of Figure 7: entry `i` is the share
    /// of total work represented by proteins `0..=i` that is complete,
    /// expressed against the cumulative share of total work.
    ///
    /// Returns `(cumulative_work_share, fraction_done)` pairs.
    pub fn cumulative_curve(&self) -> Vec<(f64, f64)> {
        let total: f64 = self.proteins.iter().map(|p| p.total_work).sum();
        if total <= 0.0 {
            return Vec::new();
        }
        let mut acc = 0.0;
        self.proteins
            .iter()
            .map(|p| {
                acc += p.total_work;
                (acc / total, p.fraction_done())
            })
            .collect()
    }

    /// Renders an ASCII strip chart: one character per protein,
    /// `#` complete, digits for partial deciles, `.` untouched.
    pub fn render_strip(&self, width: usize) -> String {
        if self.proteins.is_empty() {
            return String::new();
        }
        let per_char = (self.proteins.len() as f64 / width.max(1) as f64).max(1.0);
        let mut out = String::with_capacity(width);
        let mut idx = 0.0;
        while (idx as usize) < self.proteins.len() {
            let p = &self.proteins[idx as usize];
            let f = p.fraction_done();
            out.push(if f >= 1.0 - 1e-9 {
                '#'
            } else if f <= 0.0 {
                '.'
            } else {
                char::from_digit(((f * 10.0) as u32).min(9), 10).expect("digit")
            });
            idx += per_char;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(done: &[(f64, f64)]) -> ProgressionSnapshot {
        ProgressionSnapshot::new(
            "test",
            done.iter()
                .enumerate()
                .map(|(i, &(total, d))| ProteinProgress {
                    protein: i,
                    total_work: total,
                    done_work: d,
                })
                .collect(),
        )
    }

    #[test]
    fn protein_fraction_clamps() {
        let p = ProteinProgress {
            protein: 0,
            total_work: 10.0,
            done_work: 15.0,
        };
        assert_eq!(p.fraction_done(), 1.0);
        let z = ProteinProgress {
            protein: 0,
            total_work: 0.0,
            done_work: 0.0,
        };
        assert_eq!(z.fraction_done(), 1.0); // no work ⇒ trivially complete
    }

    #[test]
    fn skew_separates_the_two_axes() {
        // Paper: 85 % of proteins complete ↔ only 47 % of work. Reproduce
        // the mechanism: many cheap proteins done, few huge ones pending.
        let mut rows: Vec<(f64, f64)> = Vec::new();
        for _ in 0..85 {
            rows.push((1.0, 1.0)); // cheap, done
        }
        for _ in 0..15 {
            rows.push((6.5, 0.0)); // expensive, untouched
        }
        let s = snap(&rows);
        assert!((s.fraction_proteins_complete() - 0.85).abs() < 1e-9);
        let w = s.fraction_work_complete();
        assert!((w - 0.466).abs() < 0.01, "work fraction {w}");
    }

    #[test]
    fn empty_snapshot() {
        let s = snap(&[]);
        assert_eq!(s.fraction_proteins_complete(), 0.0);
        assert_eq!(s.fraction_work_complete(), 0.0);
        assert!(s.cumulative_curve().is_empty());
        assert_eq!(s.render_strip(10), "");
    }

    #[test]
    fn cumulative_curve_is_monotone_in_x() {
        let s = snap(&[(1.0, 1.0), (2.0, 0.5), (3.0, 0.0)]);
        let c = s.cumulative_curve();
        assert_eq!(c.len(), 3);
        assert!(c.windows(2).all(|w| w[0].0 < w[1].0));
        assert!((c.last().unwrap().0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strip_chart_marks_progress() {
        let s = snap(&[(1.0, 1.0), (1.0, 0.55), (1.0, 0.0)]);
        let strip = s.render_strip(3);
        assert_eq!(strip, "#5.");
    }

    #[test]
    fn work_fraction_ignores_overshoot() {
        let s = snap(&[(10.0, 20.0), (10.0, 0.0)]);
        assert!((s.fraction_work_complete() - 0.5).abs() < 1e-12);
    }
}

//! Quantiles and percentile summaries.
//!
//! The paper reports medians and means; operational analyses of the
//! realized-runtime distribution (Figure 8) and of turnaround tails want
//! arbitrary quantiles — the deadline pressure of ABL3, for example, is a
//! P95 phenomenon.

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation
/// between closest ranks (the "R-7" definition most tools default to).
///
/// Returns `None` for an empty sample or one containing NaN.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if values.is_empty() || values.iter().any(|v| v.is_nan()) {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// A percentile digest of a sample: P5 / P25 / P50 / P75 / P95.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    pub p5: f64,
    pub p25: f64,
    pub p50: f64,
    pub p75: f64,
    pub p95: f64,
}

impl Percentiles {
    /// Computes the digest; `None` for empty or NaN-bearing samples.
    pub fn of(values: &[f64]) -> Option<Percentiles> {
        Some(Percentiles {
            p5: quantile(values, 0.05)?,
            p25: quantile(values, 0.25)?,
            p50: quantile(values, 0.50)?,
            p75: quantile(values, 0.75)?,
            p95: quantile(values, 0.95)?,
        })
    }

    /// Renders in hours with one decimal (for runtime digests).
    pub fn render_hours(&self) -> String {
        format!(
            "P5 {:.1}h | P25 {:.1}h | P50 {:.1}h | P75 {:.1}h | P95 {:.1}h",
            self.p5 / 3600.0,
            self.p25 / 3600.0,
            self.p50 / 3600.0,
            self.p75 / 3600.0,
            self.p95 / 3600.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantile_of_known_sample() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(quantile(&v, 0.0), Some(1.0));
        assert_eq!(quantile(&v, 0.5), Some(3.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
        // Interpolation: 0.25 of the way from rank 1 (=2.0) to rank 2.
        assert_eq!(quantile(&v, 0.25), Some(2.0));
        assert_eq!(quantile(&v, 0.1), Some(1.4));
    }

    #[test]
    fn unsorted_input_is_fine() {
        let v = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&v, 0.5), Some(3.0));
    }

    #[test]
    fn single_value() {
        assert_eq!(quantile(&[7.0], 0.3), Some(7.0));
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert_eq!(quantile(&[], 0.5), None);
        assert_eq!(quantile(&[1.0, f64::NAN], 0.5), None);
    }

    #[test]
    #[should_panic(expected = "in [0, 1]")]
    fn out_of_range_q() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn percentiles_are_monotone() {
        let v: Vec<f64> = (0..100).map(|i| (i * i) as f64).collect();
        let p = Percentiles::of(&v).unwrap();
        assert!(p.p5 <= p.p25 && p.p25 <= p.p50 && p.p50 <= p.p75 && p.p75 <= p.p95);
        let text = p.render_hours();
        assert!(text.contains("P50"));
    }
}

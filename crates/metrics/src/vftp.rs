//! *Virtual full-time processors* (VFTP) — the paper's §3.1 paradigm.
//!
//! > "How many processors do we need to generate 10 years of cpu time for
//! > 1 day? If for 1 day, 10 years of cpu time are consumed, it is
//! > equivalent to at least 3 650 processors that compute full time for
//! > 1 day."
//!
//! VFTP converts an amount of CPU time consumed over a wall-clock window
//! into the minimum number of processors that, computing full time over the
//! same window, would produce it. It deliberately says nothing about the
//! *power* of those processors; the paper uses it to compare a volunteer
//! grid against a dedicated one (Table 2) after correcting for the
//! speed-down factor.

use crate::SECONDS_PER_DAY;

/// Virtual full-time processors given CPU seconds consumed over a window of
/// `window_seconds` wall-clock seconds.
///
/// ```
/// // 10 years of CPU time in one day ⇒ 3650 virtual full-time processors.
/// let v = metrics::vftp_from_cpu_seconds(10.0 * 365.0 * 86_400.0, 86_400.0);
/// assert!((v - 3650.0).abs() < 1e-9);
/// ```
pub fn vftp_from_cpu_seconds(cpu_seconds: f64, window_seconds: f64) -> f64 {
    assert!(window_seconds > 0.0, "window must be positive");
    cpu_seconds / window_seconds
}

/// VFTP for one day, given CPU time expressed in *years per day* — the
/// units the World Community Grid statistics page publishes.
pub fn vftp_from_cpu_years_per_day(cpu_years: f64) -> f64 {
    vftp_from_cpu_seconds(cpu_years * crate::SECONDS_PER_YEAR, SECONDS_PER_DAY)
}

/// Converts a series of per-window CPU-second totals into a VFTP series.
///
/// This is the transformation behind Figures 1 and 6(a): the WCG team
/// publishes CPU time per day/week, the paper plots the equivalent number
/// of full-time processors.
pub fn vftp_series(cpu_seconds_per_window: &[f64], window_seconds: f64) -> Vec<f64> {
    cpu_seconds_per_window
        .iter()
        .map(|&c| vftp_from_cpu_seconds(c, window_seconds))
        .collect()
}

/// Mean VFTP over a span of windows (used for the paper's "average number
/// of processors dedicated to the HCMD project is 16,450").
pub fn mean_vftp(cpu_seconds_per_window: &[f64], window_seconds: f64) -> f64 {
    if cpu_seconds_per_window.is_empty() {
        return 0.0;
    }
    vftp_series(cpu_seconds_per_window, window_seconds)
        .iter()
        .sum::<f64>()
        / cpu_seconds_per_window.len() as f64
}

/// Number of *dedicated* reference processors equivalent to a VFTP count,
/// given the measured speed-down factor of the volunteer grid (§6,
/// Table 2): `dedicated = vftp / speed_down`.
pub fn dedicated_equivalent(vftp: f64, speed_down: f64) -> f64 {
    assert!(speed_down > 0.0, "speed-down must be positive");
    vftp / speed_down
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn papers_motivating_example() {
        // 10 years of cpu time in 1 day ⇒ 3650 processors.
        let v = vftp_from_cpu_seconds(10.0 * 365.0 * 86_400.0, 86_400.0);
        assert!((v - 3650.0).abs() < 1e-9);
    }

    #[test]
    fn papers_closing_week() {
        // §6: "1,435 years of run time ... equates to 74,825 virtual
        // full-time processors" over one week. 1435 y / 7 d = 74,825 d/d.
        let v = vftp_from_cpu_seconds(1435.0 * 365.0 * 86_400.0, 7.0 * 86_400.0);
        assert!((v - 74_825.0).abs() < 1.0, "v = {v}");
    }

    #[test]
    fn years_per_day_units() {
        let v = vftp_from_cpu_years_per_day(10.0);
        assert!((v - 3650.0).abs() < 1e-9);
    }

    #[test]
    fn table2_equivalence() {
        // Table 2: 16,450 VFTP ↔ 3,029 dedicated processors at speed-down
        // 5.43 (whole period, raw factor before redundancy correction).
        let d = dedicated_equivalent(16_450.0, 5.43);
        assert!((d - 3_029.0).abs() < 2.0, "d = {d}");
        // and 26,248 ↔ 4,833 during the full-power phase.
        let d2 = dedicated_equivalent(26_248.0, 5.43);
        assert!((d2 - 4_833.0).abs() < 2.0, "d2 = {d2}");
    }

    #[test]
    fn wcg_current_power_estimate() {
        // §6: 74,825 VFTP / 3.96 ≈ 18,895 Opteron-equivalents.
        let d = dedicated_equivalent(74_825.0, 3.96);
        assert!((d - 18_895.0).abs() < 5.0, "d = {d}");
    }

    #[test]
    fn series_and_mean() {
        let cpu = [86_400.0, 2.0 * 86_400.0, 3.0 * 86_400.0];
        let s = vftp_series(&cpu, 86_400.0);
        assert_eq!(s, vec![1.0, 2.0, 3.0]);
        assert!((mean_vftp(&cpu, 86_400.0) - 2.0).abs() < 1e-12);
        assert_eq!(mean_vftp(&[], 1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        vftp_from_cpu_seconds(1.0, 0.0);
    }
}

//! Fixed-width histograms.
//!
//! Figures 2 (Nsep distribution), 4 (workunit execution-time distribution)
//! and 8 (realized workunit distribution) are all histograms; this module
//! provides the shared binning and ASCII rendering machinery.

use serde::{Deserialize, Serialize};

/// A histogram over `[lo, hi)` with uniformly wide bins.
///
/// Values below `lo` are counted in an underflow bucket, values at or above
/// `hi` in an overflow bucket, so no observation is ever silently dropped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates an empty histogram with `nbins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    /// Panics if `nbins == 0` or `hi <= lo` or either bound is not finite.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo.is_finite() && hi.is_finite() && hi > lo, "bad bounds");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Records many observations.
    pub fn record_all<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.record(v);
        }
    }

    /// Records a weighted observation (e.g. "this bin gained `w` workunits").
    pub fn record_weighted(&mut self, value: f64, weight: u64) {
        if value < self.lo {
            self.underflow += weight;
        } else if value >= self.hi {
            self.overflow += weight;
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1);
            self.bins[idx] += weight;
        }
    }

    /// Bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(low_edge, high_edge)` of bin `i`.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Observations below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total number of recorded observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Index of the fullest bin, or `None` if the histogram is empty.
    pub fn mode_bin(&self) -> Option<usize> {
        let max = *self.bins.iter().max()?;
        if max == 0 {
            return None;
        }
        self.bins.iter().position(|&c| c == max)
    }

    /// Mean of recorded in-range observations, using bin midpoints.
    pub fn approximate_mean(&self) -> Option<f64> {
        let n: u64 = self.bins.iter().sum();
        if n == 0 {
            return None;
        }
        let mut acc = 0.0;
        for (i, &c) in self.bins.iter().enumerate() {
            let (a, b) = self.bin_edges(i);
            acc += (a + b) / 2.0 * c as f64;
        }
        Some(acc / n as f64)
    }

    /// Renders the histogram as ASCII rows: `low..high  count  bar`.
    ///
    /// This is the form the benchmark binaries print so figures can be
    /// eyeballed in a terminal and diffed in EXPERIMENTS.md.
    pub fn render(&self, max_bar: usize) -> String {
        let peak = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (i, &c) in self.bins.iter().enumerate() {
            let (a, b) = self.bin_edges(i);
            let bar = "#".repeat((c as usize * max_bar).div_ceil(peak as usize).min(max_bar));
            out.push_str(&format!("{a:>12.1} ..{b:>12.1} {c:>10} {bar}\n"));
        }
        if self.underflow > 0 {
            out.push_str(&format!("{:>25} {:>10}\n", "< range", self.underflow));
        }
        if self.overflow > 0 {
            out.push_str(&format!("{:>25} {:>10}\n", ">= range", self.overflow));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.0);
        h.record(0.99);
        h.record(5.0);
        h.record(9.999);
        assert_eq!(h.bins()[0], 2);
        assert_eq!(h.bins()[5], 1);
        assert_eq!(h.bins()[9], 1);
        assert_eq!(h.total(), 4);
    }

    #[test]
    fn under_and_overflow_are_counted() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(-0.5);
        h.record(1.0); // hi edge is exclusive
        h.record(7.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn weighted_records() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.record_weighted(1.5, 10);
        h.record_weighted(-1.0, 3);
        assert_eq!(h.bins()[1], 10);
        assert_eq!(h.underflow(), 3);
    }

    #[test]
    fn mode_and_mean() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record_all([1.5, 1.5, 1.5, 8.5]);
        assert_eq!(h.mode_bin(), Some(1));
        // midpoints: 3×1.5 + 1×8.5 → mean 3.25
        assert!((h.approximate_mean().unwrap() - 3.25).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_has_no_mode_or_mean() {
        let h = Histogram::new(0.0, 1.0, 3);
        assert_eq!(h.mode_bin(), None);
        assert_eq!(h.approximate_mean(), None);
    }

    #[test]
    fn bin_edges_partition_the_range() {
        let h = Histogram::new(2.0, 12.0, 5);
        assert_eq!(h.bin_edges(0), (2.0, 4.0));
        assert_eq!(h.bin_edges(4), (10.0, 12.0));
    }

    #[test]
    fn render_contains_counts() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.record(0.5);
        let text = h.render(20);
        assert!(text.contains('#'));
        assert!(text.lines().count() >= 2);
    }

    #[test]
    #[should_panic(expected = "bad bounds")]
    fn rejects_inverted_bounds() {
        Histogram::new(1.0, 0.0, 4);
    }
}

//! The `y:d:h:m:s` duration notation used by the paper.
//!
//! The paper reports aggregate CPU times in a *years : days : hours :
//! minutes : seconds* notation, e.g. the estimated phase-I workload is
//! `1,488:237:19:45:54` ("more than 14 centuries and 88 years") and the
//! consumed total is `8,082:275:17:15:44`. A year is 365 days here — the
//! notation is a mixed-radix rendering of a second count, not a calendar
//! computation.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A non-negative duration in the paper's mixed-radix `y:d:h:m:s` notation.
///
/// Internally the value is an exact second count (`u64`), so conversions
/// round-trip losslessly:
///
/// ```
/// use metrics::Ydhms;
/// let d = Ydhms::from_seconds(46_946_115_954);
/// assert_eq!(d.to_string(), "1,488:237:19:45:54");
/// assert_eq!(d.total_seconds(), 46_946_115_954);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ydhms {
    seconds: u64,
}

impl Ydhms {
    /// Wraps an exact second count.
    pub const fn from_seconds(seconds: u64) -> Self {
        Self { seconds }
    }

    /// Builds a duration from its mixed-radix components.
    pub const fn new(years: u64, days: u64, hours: u64, minutes: u64, seconds: u64) -> Self {
        let total = ((years * 365 + days) * 24 + hours) * 3600 + minutes * 60 + seconds;
        Self { seconds: total }
    }

    /// Rounds a fractional second count to the nearest whole second.
    ///
    /// Negative inputs clamp to zero; the paper's quantities are all
    /// non-negative.
    pub fn from_seconds_f64(seconds: f64) -> Self {
        Self {
            seconds: seconds.max(0.0).round() as u64,
        }
    }

    /// The exact second count.
    pub const fn total_seconds(self) -> u64 {
        self.seconds
    }

    /// Total duration expressed in fractional years (365-day years).
    pub fn total_years(self) -> f64 {
        self.seconds as f64 / crate::SECONDS_PER_YEAR
    }

    /// Total duration expressed in fractional days.
    pub fn total_days(self) -> f64 {
        self.seconds as f64 / crate::SECONDS_PER_DAY
    }

    /// The `years` component of the mixed-radix rendering.
    pub const fn years(self) -> u64 {
        self.seconds / (365 * 86_400)
    }

    /// The `days` component (0..=364).
    pub const fn days(self) -> u64 {
        (self.seconds / 86_400) % 365
    }

    /// The `hours` component (0..=23).
    pub const fn hours(self) -> u64 {
        (self.seconds / 3600) % 24
    }

    /// The `minutes` component (0..=59).
    pub const fn minutes(self) -> u64 {
        (self.seconds / 60) % 60
    }

    /// The `seconds` component (0..=59).
    pub const fn seconds(self) -> u64 {
        self.seconds % 60
    }

    /// Saturating sum of two durations.
    pub const fn saturating_add(self, other: Self) -> Self {
        Self {
            seconds: self.seconds.saturating_add(other.seconds),
        }
    }
}

impl fmt::Display for Ydhms {
    /// Renders as the paper prints it: `1,488:237:19:45:54` — the year
    /// component carries a thousands separator, the rest are plain fields.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let years = self.years();
        if years >= 1000 {
            write!(f, "{},{:03}", years / 1000, years % 1000)?;
        } else {
            write!(f, "{years}")?;
        }
        write!(
            f,
            ":{}:{}:{}:{}",
            self.days(),
            self.hours(),
            self.minutes(),
            self.seconds()
        )
    }
}

impl std::ops::Add for Ydhms {
    type Output = Ydhms;
    fn add(self, rhs: Ydhms) -> Ydhms {
        Ydhms::from_seconds(self.seconds + rhs.seconds)
    }
}

impl std::iter::Sum for Ydhms {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Ydhms::from_seconds(0), |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase1_estimate_renders_like_the_paper() {
        // 1,488 years 237 days 19 h 45 m 54 s — §4.1.
        let d = Ydhms::new(1488, 237, 19, 45, 54);
        assert_eq!(d.to_string(), "1,488:237:19:45:54");
    }

    #[test]
    fn consumed_total_renders_like_the_paper() {
        // 8,082 years 275 days 17 h 15 m 44 s — §6.
        let d = Ydhms::new(8082, 275, 17, 15, 44);
        assert_eq!(d.to_string(), "8,082:275:17:15:44");
    }

    #[test]
    fn components_round_trip() {
        let d = Ydhms::new(3, 364, 23, 59, 59);
        assert_eq!(d.years(), 3);
        assert_eq!(d.days(), 364);
        assert_eq!(d.hours(), 23);
        assert_eq!(d.minutes(), 59);
        assert_eq!(d.seconds(), 59);
        let re = Ydhms::new(d.years(), d.days(), d.hours(), d.minutes(), d.seconds());
        assert_eq!(re, d);
    }

    #[test]
    fn small_durations() {
        assert_eq!(Ydhms::from_seconds(0).to_string(), "0:0:0:0:0");
        assert_eq!(Ydhms::from_seconds(61).to_string(), "0:0:0:1:1");
        assert_eq!(Ydhms::from_seconds(86_400).to_string(), "0:1:0:0:0");
    }

    #[test]
    fn fractional_rounding_and_clamping() {
        assert_eq!(Ydhms::from_seconds_f64(1.4).total_seconds(), 1);
        assert_eq!(Ydhms::from_seconds_f64(1.6).total_seconds(), 2);
        assert_eq!(Ydhms::from_seconds_f64(-5.0).total_seconds(), 0);
    }

    #[test]
    fn zero_has_all_zero_components() {
        let z = Ydhms::from_seconds(0);
        assert_eq!(
            (z.years(), z.days(), z.hours(), z.minutes(), z.seconds()),
            (0, 0, 0, 0, 0)
        );
        assert_eq!(z.total_seconds(), 0);
        assert_eq!(z.total_days(), 0.0);
        assert_eq!(z.total_years(), 0.0);
    }

    #[test]
    fn carries_at_each_radix_boundary() {
        // 59 s + 1 s carries into the minute field...
        assert_eq!(Ydhms::from_seconds(59).to_string(), "0:0:0:0:59");
        assert_eq!(Ydhms::from_seconds(60).to_string(), "0:0:0:1:0");
        // ...59:59 carries into the hour...
        assert_eq!(Ydhms::from_seconds(3_599).to_string(), "0:0:0:59:59");
        assert_eq!(Ydhms::from_seconds(3_600).to_string(), "0:0:1:0:0");
        // ...23:59:59 carries into the day...
        assert_eq!(Ydhms::from_seconds(86_399).to_string(), "0:0:23:59:59");
        assert_eq!(Ydhms::from_seconds(86_400).to_string(), "0:1:0:0:0");
        // ...and day 364 carries into the (365-day) year.
        assert_eq!(
            Ydhms::from_seconds(365 * 86_400 - 1).to_string(),
            "0:364:23:59:59"
        );
        assert_eq!(Ydhms::from_seconds(365 * 86_400).to_string(), "1:0:0:0:0");
    }

    #[test]
    fn from_seconds_f64_clamps_non_finite_and_negative() {
        assert_eq!(Ydhms::from_seconds_f64(f64::NAN).total_seconds(), 0);
        assert_eq!(
            Ydhms::from_seconds_f64(f64::NEG_INFINITY).total_seconds(),
            0
        );
        assert_eq!(Ydhms::from_seconds_f64(-0.4).total_seconds(), 0);
        assert_eq!(Ydhms::from_seconds_f64(0.5).total_seconds(), 1);
    }

    #[test]
    fn saturating_add_caps_at_u64_max() {
        let max = Ydhms::from_seconds(u64::MAX);
        assert_eq!(max.saturating_add(Ydhms::from_seconds(1)), max);
        let a = Ydhms::from_seconds(40);
        assert_eq!(a.saturating_add(a).total_seconds(), 80);
    }

    #[test]
    fn total_years_matches_components() {
        let d = Ydhms::new(2, 182, 12, 0, 0); // 2.5 years
        assert!((d.total_years() - 2.5).abs() < 1e-3);
    }

    #[test]
    fn sum_and_add() {
        let a = Ydhms::from_seconds(100);
        let b = Ydhms::from_seconds(23);
        assert_eq!((a + b).total_seconds(), 123);
        let s: Ydhms = [a, b, Ydhms::from_seconds(1)].into_iter().sum();
        assert_eq!(s.total_seconds(), 124);
    }

    #[test]
    fn ratio_of_consumed_to_estimated_is_the_papers_factor() {
        // §6: consumed / estimated = 5.43.
        let est = Ydhms::new(1488, 237, 19, 45, 54);
        let got = Ydhms::new(8082, 275, 17, 15, 44);
        let factor = got.total_seconds() as f64 / est.total_seconds() as f64;
        assert!((factor - 5.43).abs() < 0.01, "factor = {factor}");
    }
}

//! Measurement toolkit for the HCMD / World Community Grid reproduction.
//!
//! This crate implements every measurement device the paper uses to report
//! its results:
//!
//! * [`vftp`] — the *virtual full-time processors* paradigm introduced in
//!   §3.1 of the paper ("How many processors do we need to generate 10 years
//!   of cpu time for 1 day?").
//! * [`duration`] — the `y:d:h:m:s` duration notation used throughout the
//!   paper (e.g. the phase-I workload `1,488:237:19:45:54`).
//! * [`summary`] — summary statistics as printed in Table 1 (mean, standard
//!   deviation, min, max, median).
//! * [`histogram`] — fixed-width histograms backing Figures 2, 4 and 8.
//! * [`timeseries`] — daily/weekly accumulation series backing Figures 1
//!   and 6.
//! * [`regression`] — ordinary least squares with correlation coefficient,
//!   used for the linearity study of Figure 3 (the paper reports r ≈ 0.99).
//! * [`speeddown`] — the §6 speed-down analysis decomposing the observed
//!   5.43× / 3.96× factors.
//! * [`progression`] — the per-protein cumulative progression view of
//!   Figure 7.
//!
//! All types are plain data with no interior mutability; everything is
//! deterministic and `Send + Sync`.

pub mod duration;
pub mod histogram;
pub mod progression;
pub mod quantile;
pub mod regression;
pub mod speeddown;
pub mod summary;
pub mod timeseries;
pub mod vftp;

pub use duration::Ydhms;
pub use histogram::Histogram;
pub use progression::ProgressionSnapshot;
pub use quantile::{quantile, Percentiles};
pub use regression::LinearFit;
pub use speeddown::SpeedDown;
pub use summary::Summary;
pub use timeseries::DailySeries;
pub use vftp::{vftp_from_cpu_seconds, vftp_series};

/// Number of seconds in a day, the base unit of the VFTP conversion.
pub const SECONDS_PER_DAY: f64 = 86_400.0;
/// Number of seconds in a (365-day) year, as used by the paper's
/// `y:d:h:m:s` arithmetic.
pub const SECONDS_PER_YEAR: f64 = 365.0 * SECONDS_PER_DAY;
/// Number of seconds in a week.
pub const SECONDS_PER_WEEK: f64 = 7.0 * SECONDS_PER_DAY;

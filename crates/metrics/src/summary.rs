//! Summary statistics in the shape of the paper's Table 1.
//!
//! Table 1 reports, for the 168×168 computation-time matrix: average,
//! standard deviation, min, max and median (671 / 968.04 / 6 / 46 347 /
//! 384 seconds).

use serde::{Deserialize, Serialize};

/// Five-number summary (mean, population standard deviation, min, max,
/// median) of a sample, as used in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation (the paper's value 968.04 is
    /// consistent with a population, not sample, estimator).
    pub std_dev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Median (midpoint average for even-sized samples).
    pub median: f64,
    /// Number of observations.
    pub count: usize,
}

impl Summary {
    /// Computes the summary of a sample.
    ///
    /// Returns `None` for an empty sample or one containing NaN.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() || values.iter().any(|v| v.is_nan()) {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let median = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2]) / 2.0
        };
        Some(Summary {
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            median,
            count: values.len(),
        })
    }

    /// Renders one row in the layout of Table 1:
    /// `average  standard deviation  min  max  median`.
    pub fn table1_row(&self) -> String {
        format!(
            "{:>10.0} {:>20.2} {:>8.0} {:>8.0} {:>8.0}",
            self.mean, self.std_dev, self.min, self.max, self.median
        )
    }
}

/// Fraction of the total mass carried by the `k` largest contributions.
///
/// §4.1 observes that "there are 10 proteins which represent 30% of the
/// total processing time"; this helper quantifies that concentration.
pub fn top_k_share(values: &[f64], k: usize) -> f64 {
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
    sorted.iter().take(k).sum::<f64>() / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12); // classic population-σ example
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!((s.median - 4.5).abs() < 1e-12);
        assert_eq!(s.count, 8);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(Summary::of(&[3.0, 1.0, 2.0]).unwrap().median, 2.0);
        assert_eq!(Summary::of(&[4.0, 1.0, 2.0, 3.0]).unwrap().median, 2.5);
    }

    #[test]
    fn empty_and_nan_rejected() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
    }

    #[test]
    fn single_value() {
        let s = Summary::of(&[42.0]).unwrap();
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.median, 42.0);
    }

    #[test]
    fn top_k_share_concentration() {
        // One heavy value among ten: 91 / 100 of the mass in the top-1.
        let mut v = vec![1.0; 9];
        v.push(91.0);
        assert!((top_k_share(&v, 1) - 0.91).abs() < 1e-12);
        assert!((top_k_share(&v, 10) - 1.0).abs() < 1e-12);
        assert_eq!(top_k_share(&[], 3), 0.0);
    }

    #[test]
    fn table1_row_formats_all_fields() {
        let s = Summary::of(&[6.0, 384.0, 46_347.0]).unwrap();
        let row = s.table1_row();
        assert!(row.contains("46347"));
        assert!(row.contains("384"));
    }
}

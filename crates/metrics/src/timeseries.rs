//! Daily accumulation series.
//!
//! The grid simulator accounts CPU time and result arrivals into per-day
//! buckets; Figures 1, 6(a) and 6(b) are then plain transformations of
//! these series (VFTP conversion, weekly aggregation).

use serde::{Deserialize, Serialize};

/// A series of per-day accumulators starting at day 0 of the simulation.
///
/// Recording into a day beyond the current length grows the series; days
/// are dense (missing days hold 0.0).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DailySeries {
    values: Vec<f64>,
}

impl DailySeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series with `days` zeroed entries.
    pub fn with_days(days: usize) -> Self {
        Self {
            values: vec![0.0; days],
        }
    }

    /// Adds `amount` into the bucket for `day`.
    pub fn add(&mut self, day: usize, amount: f64) {
        if day >= self.values.len() {
            self.values.resize(day + 1, 0.0);
        }
        self.values[day] += amount;
    }

    /// Adds an amount spread uniformly over a `[start_sec, end_sec)`
    /// interval expressed in seconds since simulation start.
    ///
    /// This is how CPU time consumed by a workunit spanning several days is
    /// accounted: proportionally to the overlap with each day.
    pub fn add_interval(&mut self, start_sec: f64, end_sec: f64, amount: f64) {
        if end_sec <= start_sec || amount == 0.0 {
            return;
        }
        let total = end_sec - start_sec;
        let first_day = (start_sec / crate::SECONDS_PER_DAY).floor() as usize;
        let last_day = ((end_sec - f64::EPSILON) / crate::SECONDS_PER_DAY).floor() as usize;
        for day in first_day..=last_day {
            let day_start = day as f64 * crate::SECONDS_PER_DAY;
            let day_end = day_start + crate::SECONDS_PER_DAY;
            let overlap = end_sec.min(day_end) - start_sec.max(day_start);
            if overlap > 0.0 {
                self.add(day, amount * overlap / total);
            }
        }
    }

    /// Number of days in the series.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no day has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Per-day values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value for one day (0.0 beyond the recorded range).
    pub fn get(&self, day: usize) -> f64 {
        self.values.get(day).copied().unwrap_or(0.0)
    }

    /// Sum over all days.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Aggregates into weekly buckets (7 days per bucket, the last bucket
    /// may cover fewer days).
    pub fn weekly(&self) -> Vec<f64> {
        self.values.chunks(7).map(|w| w.iter().sum()).collect()
    }

    /// Sum over the half-open day range `[from, to)`.
    pub fn range_total(&self, from: usize, to: usize) -> f64 {
        self.values
            .iter()
            .skip(from)
            .take(to.saturating_sub(from))
            .sum()
    }

    /// Centred moving average with an odd `window` (edges use the
    /// available neighbourhood) — the smoothing used to read trends out of
    /// the weekday-modulated VFTP curves of Figures 1 and 6(a).
    pub fn smoothed(&self, window: usize) -> Vec<f64> {
        assert!(window % 2 == 1, "window must be odd");
        let half = window / 2;
        (0..self.values.len())
            .map(|i| {
                let lo = i.saturating_sub(half);
                let hi = (i + half + 1).min(self.values.len());
                self.values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    }

    /// Cumulative series: entry `d` is the total through day `d`.
    pub fn cumulative(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.values
            .iter()
            .map(|v| {
                acc += v;
                acc
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SECONDS_PER_DAY;

    #[test]
    fn add_grows_the_series() {
        let mut s = DailySeries::new();
        s.add(3, 5.0);
        assert_eq!(s.len(), 4);
        assert_eq!(s.get(3), 5.0);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.get(99), 0.0);
    }

    #[test]
    fn interval_split_across_days() {
        let mut s = DailySeries::new();
        // Half of day 0 and half of day 1.
        s.add_interval(0.5 * SECONDS_PER_DAY, 1.5 * SECONDS_PER_DAY, 10.0);
        assert!((s.get(0) - 5.0).abs() < 1e-9);
        assert!((s.get(1) - 5.0).abs() < 1e-9);
        assert!((s.total() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn interval_within_one_day() {
        let mut s = DailySeries::new();
        s.add_interval(100.0, 200.0, 7.0);
        assert!((s.get(0) - 7.0).abs() < 1e-12);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn interval_spanning_many_days_conserves_mass() {
        let mut s = DailySeries::new();
        s.add_interval(0.25 * SECONDS_PER_DAY, 5.75 * SECONDS_PER_DAY, 11.0);
        assert!((s.total() - 11.0).abs() < 1e-9);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn degenerate_intervals_are_ignored() {
        let mut s = DailySeries::new();
        s.add_interval(5.0, 5.0, 3.0);
        s.add_interval(9.0, 2.0, 3.0);
        assert!(s.is_empty());
    }

    #[test]
    fn weekly_aggregation() {
        let mut s = DailySeries::with_days(10);
        for d in 0..10 {
            s.add(d, 1.0);
        }
        assert_eq!(s.weekly(), vec![7.0, 3.0]);
    }

    #[test]
    fn smoothing_removes_weekly_ripple() {
        // A flat signal with a ±1 weekly ripple: the 7-day moving average
        // recovers the flat trend away from the edges.
        let mut s = DailySeries::new();
        for d in 0..28 {
            s.add(d, 10.0 + if d % 7 >= 5 { -1.0 } else { 1.0 });
        }
        let sm = s.smoothed(7);
        for v in &sm[3..25] {
            assert!((v - (10.0 + 3.0 / 7.0)).abs() < 1e-9, "v = {v}");
        }
        // Window 1 is the identity.
        assert_eq!(s.smoothed(1), s.values().to_vec());
    }

    #[test]
    #[should_panic(expected = "window must be odd")]
    fn even_window_rejected() {
        DailySeries::with_days(3).smoothed(2);
    }

    #[test]
    fn cumulative_and_range() {
        let mut s = DailySeries::new();
        s.add(0, 1.0);
        s.add(1, 2.0);
        s.add(2, 3.0);
        assert_eq!(s.cumulative(), vec![1.0, 3.0, 6.0]);
        assert_eq!(s.range_total(1, 3), 5.0);
        assert_eq!(s.range_total(2, 2), 0.0);
    }
}

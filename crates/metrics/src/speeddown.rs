//! The §6 speed-down analysis.
//!
//! The paper reports two headline factors:
//!
//! * **5.43** — total CPU time consumed on the volunteer grid divided by the
//!   estimate on the reference processor (Opteron 2 GHz), *including*
//!   redundant computation;
//! * **3.96** — the same after dividing out the redundancy factor 1.37.
//!
//! §6 then attributes the 3.96: the UD agent accounts wall-clock rather
//! than CPU time under a 60 % throttle, the application runs at lowest
//! priority beneath the volunteer's own load, volunteer hosts are slower
//! than the reference processor, interrupted workunits replay from the last
//! checkpoint, and the screensaver itself consumes cycles. This module
//! captures both the bookkeeping and the decomposition.

use serde::{Deserialize, Serialize};

/// Observed aggregate quantities of a campaign, from which the paper's §6
/// ratios are derived.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedDown {
    /// CPU seconds the work *should* take on the reference processor
    /// (formula (1) estimate).
    pub reference_cpu_seconds: f64,
    /// CPU seconds actually accounted by the grid, including redundancy.
    pub consumed_cpu_seconds: f64,
    /// Results produced / useful results (≥ 1); the paper measured 1.37.
    pub redundancy_factor: f64,
}

impl SpeedDown {
    /// The raw consumed/estimated ratio (the paper's 5.43).
    pub fn raw_factor(&self) -> f64 {
        self.consumed_cpu_seconds / self.reference_cpu_seconds
    }

    /// The ratio after removing redundant computation (the paper's 3.96).
    pub fn net_factor(&self) -> f64 {
        self.raw_factor() / self.redundancy_factor
    }

    /// Builds the record from a result count pair instead of a
    /// pre-computed factor.
    ///
    /// The paper: "The redundancy factor for all projects is 1.37, it is
    /// obtained by comparing the number of computing results disclosed by
    /// World Community Grid (5,418,010) and the number of effective results
    /// received (3,936,010)."
    pub fn with_result_counts(
        reference_cpu_seconds: f64,
        consumed_cpu_seconds: f64,
        results_computed: u64,
        results_useful: u64,
    ) -> Self {
        assert!(results_useful > 0, "need at least one useful result");
        Self {
            reference_cpu_seconds,
            consumed_cpu_seconds,
            redundancy_factor: results_computed as f64 / results_useful as f64,
        }
    }
}

/// Multiplicative decomposition of the net speed-down factor into the
/// causes §6 enumerates. Each term is the ratio `realized / ideal ≥ 1`
/// contributed by that cause alone; the model predicts their product.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpeedDownDecomposition {
    /// Wall-clock accounting under the CPU throttle: a 60 % cap means a
    /// workunit needing `t` CPU seconds is billed `t / 0.6` seconds.
    pub throttle: f64,
    /// The research app runs at lowest priority; the volunteer's own use of
    /// the machine steals cycles that are still billed as run time.
    pub contention: f64,
    /// Mean slowness of volunteer hardware relative to the reference
    /// Opteron 2 GHz.
    pub host_slowness: f64,
    /// CPU time recomputed after interruptions (restart from the last
    /// checkpoint, §4.3).
    pub checkpoint_replay: f64,
    /// Screensaver rendering overhead.
    pub screensaver: f64,
}

impl SpeedDownDecomposition {
    /// Product of all causes — the predicted net speed-down factor.
    pub fn predicted_factor(&self) -> f64 {
        self.throttle
            * self.contention
            * self.host_slowness
            * self.checkpoint_replay
            * self.screensaver
    }

    /// The paper's qualitative attribution: accounting artifacts (throttle
    /// plus contention) "can explain about half" of the 3.96 factor.
    pub fn accounting_share(&self) -> f64 {
        (self.throttle * self.contention).ln() / self.predicted_factor().ln()
    }

    /// A decomposition consistent with the paper's narrative: 60 % throttle
    /// (×1.67), light contention (×1.2) — together ×2 "about half" of 3.96
    /// in log terms — hosts ~1.6× slower on average than the reference,
    /// ~15 % checkpoint replay loss, ~7 % screensaver overhead.
    pub fn paper_narrative() -> Self {
        Self {
            throttle: 1.0 / 0.6,
            contention: 1.2,
            host_slowness: 1.6,
            checkpoint_replay: 1.15,
            screensaver: 1.07,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's §6 aggregates, in seconds.
    fn paper_record() -> SpeedDown {
        // estimate: 1,488 y 237 d 19:45:54 ; consumed: 8,082 y 275 d 17:15:44
        let est = crate::Ydhms::new(1488, 237, 19, 45, 54).total_seconds() as f64;
        let got = crate::Ydhms::new(8082, 275, 17, 15, 44).total_seconds() as f64;
        SpeedDown {
            reference_cpu_seconds: est,
            consumed_cpu_seconds: got,
            redundancy_factor: 1.37,
        }
    }

    #[test]
    fn raw_factor_is_5_43() {
        assert!((paper_record().raw_factor() - 5.43).abs() < 0.01);
    }

    #[test]
    fn net_factor_is_3_96() {
        assert!((paper_record().net_factor() - 3.96).abs() < 0.01);
    }

    #[test]
    fn redundancy_from_result_counts() {
        let s = SpeedDown::with_result_counts(1.0, 5.43, 5_418_010, 3_936_010);
        assert!((s.redundancy_factor - 1.37).abs() < 0.01);
        // 73 % of results useful ⇔ factor 1.37.
        assert!((1.0 / s.redundancy_factor - 0.726).abs() < 0.01);
    }

    #[test]
    fn narrative_decomposition_lands_near_3_96() {
        let d = SpeedDownDecomposition::paper_narrative();
        let p = d.predicted_factor();
        assert!((p - 3.96).abs() < 0.35, "predicted {p}");
    }

    #[test]
    fn accounting_explains_about_half() {
        let d = SpeedDownDecomposition::paper_narrative();
        let share = d.accounting_share();
        assert!((0.35..0.65).contains(&share), "share = {share}");
    }

    #[test]
    #[should_panic(expected = "useful result")]
    fn zero_useful_results_rejected() {
        SpeedDown::with_result_counts(1.0, 1.0, 10, 0);
    }

    #[test]
    fn workunit_runtime_consistency_check() {
        // §6: average packaged workunit 3 h 18 m 47 s, realized ≈ 13 h on
        // volunteers; 13 h / 3.96 ≈ 3 h 17 m — "confirms the speed down".
        let packaged: f64 = 3.0 * 3600.0 + 18.0 * 60.0 + 47.0;
        let realized = 13.0 * 3600.0;
        let implied = realized / 3.96;
        assert!((implied - packaged).abs() / packaged < 0.02);
    }
}

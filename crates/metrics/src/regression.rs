//! Ordinary least squares and the correlation coefficient.
//!
//! §4.1 of the paper establishes that MAXDo's computing time is linear in
//! the number of orientations (`irot` fixed `isep`) and in the number of
//! starting positions (`isep` fixed `irot`), checked over 400 random
//! protein couples with "correlation coefficient always around 0.99", and
//! then simplifies to a zero-intercept model (b = 0) so a single
//! measurement per couple determines the slope. This module provides both
//! fits.

use serde::{Deserialize, Serialize};

/// Result of a least-squares line fit `y ≈ a·x + b`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Slope `a`.
    pub slope: f64,
    /// Intercept `b` (zero for [`LinearFit::through_origin`]).
    pub intercept: f64,
    /// Pearson correlation coefficient of the sample.
    pub r: f64,
}

impl LinearFit {
    /// Ordinary least squares with intercept.
    ///
    /// Returns `None` when fewer than two points are given or the x values
    /// are all identical (the slope would be undefined).
    pub fn fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
        if xs.len() != ys.len() || xs.len() < 2 {
            return None;
        }
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
        let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = my - slope * mx;
        // A perfectly flat y (syy == 0) is perfectly predicted by the
        // constant model; report r = 1 rather than 0/0.
        let r = if syy == 0.0 {
            1.0
        } else {
            sxy / (sxx * syy).sqrt()
        };
        Some(LinearFit {
            slope,
            intercept,
            r,
        })
    }

    /// Least squares through the origin (`b = 0`), the simplification the
    /// paper adopts: "we decided to assume the computing time is a linear
    /// function ... (b = 0). This means that we only need one point to
    /// determine the slope."
    pub fn through_origin(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
        if xs.len() != ys.len() || xs.is_empty() {
            return None;
        }
        let sxx: f64 = xs.iter().map(|x| x * x).sum();
        if sxx == 0.0 {
            return None;
        }
        let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| x * y).sum();
        let slope = sxy / sxx;
        // Report the plain Pearson r of the sample so callers can still
        // assess linearity quality (undefined for a single point → 1.0).
        let r = if xs.len() >= 2 {
            LinearFit::fit(xs, ys).map(|f| f.r).unwrap_or(1.0)
        } else {
            1.0
        };
        Some(LinearFit {
            slope,
            intercept: 0.0,
            r,
        })
    }

    /// Predicted value at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Largest absolute relative residual over a sample, a convenient
    /// linearity figure of merit for tests.
    pub fn max_relative_residual(&self, xs: &[f64], ys: &[f64]) -> f64 {
        xs.iter()
            .zip(ys)
            .map(|(&x, &y)| {
                let p = self.predict(x);
                if y == 0.0 {
                    (p - y).abs()
                } else {
                    ((p - y) / y).abs()
                }
            })
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 2.0).abs() < 1e-12);
        assert!((f.r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn through_origin_recovers_slope() {
        let xs = [1.0, 2.0, 4.0];
        let ys = [2.0, 4.0, 8.0];
        let f = LinearFit::through_origin(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert_eq!(f.intercept, 0.0);
    }

    #[test]
    fn single_point_through_origin() {
        // The paper's one-measurement slope determination.
        let f = LinearFit::through_origin(&[21.0], &[671.0]).unwrap();
        assert!((f.slope - 671.0 / 21.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_still_high_r() {
        let xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 5.0 * x + if i % 2 == 0 { 0.3 } else { -0.3 })
            .collect();
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!(f.r > 0.99, "r = {}", f.r);
    }

    #[test]
    fn anticorrelated_sample_has_negative_r() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [3.0, 2.0, 1.0, 0.0];
        let f = LinearFit::fit(&xs, &ys).unwrap();
        assert!((f.r + 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(LinearFit::fit(&[1.0], &[1.0]).is_none());
        assert!(LinearFit::fit(&[2.0, 2.0], &[1.0, 5.0]).is_none());
        assert!(LinearFit::fit(&[1.0, 2.0], &[1.0]).is_none());
        assert!(LinearFit::through_origin(&[], &[]).is_none());
        assert!(LinearFit::through_origin(&[0.0, 0.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn flat_y_reports_perfect_fit() {
        let f = LinearFit::fit(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.r, 1.0);
    }

    #[test]
    fn residual_figure_of_merit() {
        let f = LinearFit {
            slope: 2.0,
            intercept: 0.0,
            r: 1.0,
        };
        let worst = f.max_relative_residual(&[1.0, 2.0], &[2.0, 5.0]);
        assert!((worst - 0.2).abs() < 1e-12); // |4-5|/5
    }
}

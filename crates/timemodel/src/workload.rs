//! Formula (1): the total phase-I workload.
//!
//! §4.1:
//!
//! > It needs more than 14 centuries and 88 years of cpu time on a single
//! > Opteron 2Ghz processor to be precise 1,488:237:19:45:54 (y:d:h:m:s).
//! > This quantity is represented by formula:
//! >     Σ_{p1,p2 ∈ P} Nsep(p1) · 21 · ctiter(p1, p2)
//!
//! With `Mct(p1, p2) = 21 · ctiter(p1, p2)` (a matrix entry covers the full
//! orientation set of one starting position), the total is
//! `Σ Nsep(p1) · Mct(p1, p2)`. This module computes the total, per-protein
//! and per-couple workloads, and the potential workunit count (§4.1: a
//! minimal workunit is a single starting position of a single couple —
//! "49,481,544 workunits can be generated").

use crate::matrix::CostMatrix;
use maxdo::ProteinLibrary;
use metrics::Ydhms;
use serde::{Deserialize, Serialize};

/// The paper's phase-I reference total, `1,488:237:19:45:54`.
pub fn phase1_reference_total() -> Ydhms {
    Ydhms::new(1488, 237, 19, 45, 54)
}

/// Total CPU seconds on the reference processor (formula (1)).
pub fn total_cpu_seconds(library: &ProteinLibrary, matrix: &CostMatrix) -> f64 {
    assert_eq!(
        library.len(),
        matrix.len(),
        "library and matrix must agree in size"
    );
    (0..library.len())
        .map(|i| library.nsep_table()[i] as f64 * matrix.row_sum(i))
        .sum()
}

/// A fully derived phase workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Per-receptor CPU seconds: `W(p1) = Nsep(p1) · Σ_p2 Mct(p1, p2)`.
    pub per_protein_seconds: Vec<f64>,
    /// Total CPU seconds (formula (1)).
    pub total_seconds: f64,
    /// Number of minimal workunits (one starting position of one couple):
    /// `Σ_{p1,p2} Nsep(p1) = n · Σ Nsep`.
    pub minimal_workunits: u64,
}

impl Workload {
    /// Derives the workload of a library/matrix pair.
    pub fn derive(library: &ProteinLibrary, matrix: &CostMatrix) -> Self {
        assert_eq!(library.len(), matrix.len());
        let per_protein_seconds: Vec<f64> = (0..library.len())
            .map(|i| library.nsep_table()[i] as f64 * matrix.row_sum(i))
            .collect();
        let total_seconds = per_protein_seconds.iter().sum();
        let nsep_sum: u64 = library.nsep_table().iter().map(|&x| x as u64).sum();
        Self {
            per_protein_seconds,
            total_seconds,
            minimal_workunits: nsep_sum * library.len() as u64,
        }
    }

    /// The total as the paper prints it.
    pub fn total(&self) -> Ydhms {
        Ydhms::from_seconds_f64(self.total_seconds)
    }

    /// Receptor indices ordered by ascending workload — the launch order
    /// World Community Grid used (§5.1: "first launch the protein that
    /// required less computing time").
    pub fn launch_order(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.per_protein_seconds.len()).collect();
        order.sort_by(|&a, &b| {
            self.per_protein_seconds[a]
                .partial_cmp(&self.per_protein_seconds[b])
                .expect("no NaN")
        });
        order
    }

    /// Share of the total carried by the `k` most expensive proteins
    /// (§4.1: "there are 10 proteins which represent 30% of the total
    /// processing time").
    pub fn top_k_share(&self, k: usize) -> f64 {
        metrics::summary::top_k_share(&self.per_protein_seconds, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{CostModel, LibraryConfig, ProteinLibrary};

    fn setup() -> (ProteinLibrary, CostMatrix) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(4), 13);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(1e-3));
        (lib, m)
    }

    #[test]
    fn total_matches_manual_formula() {
        let (lib, m) = setup();
        let mut manual = 0.0;
        for i in 0..4 {
            for j in 0..4 {
                manual += lib.nsep_table()[i] as f64 * m.get(i, j);
            }
        }
        assert!((total_cpu_seconds(&lib, &m) - manual).abs() < 1e-9);
    }

    #[test]
    fn workload_totals_are_consistent() {
        let (lib, m) = setup();
        let w = Workload::derive(&lib, &m);
        assert_eq!(w.per_protein_seconds.len(), 4);
        assert!((w.per_protein_seconds.iter().sum::<f64>() - w.total_seconds).abs() < 1e-9);
        assert_eq!(w.total().total_seconds(), w.total_seconds.round() as u64);
    }

    #[test]
    fn minimal_workunit_count() {
        let (lib, m) = setup();
        let w = Workload::derive(&lib, &m);
        let nsep_sum: u64 = lib.nsep_table().iter().map(|&x| x as u64).sum();
        assert_eq!(w.minimal_workunits, nsep_sum * 4);
    }

    #[test]
    fn launch_order_is_cheapest_first() {
        let (lib, m) = setup();
        let w = Workload::derive(&lib, &m);
        let order = w.launch_order();
        assert_eq!(order.len(), 4);
        for pair in order.windows(2) {
            assert!(w.per_protein_seconds[pair[0]] <= w.per_protein_seconds[pair[1]]);
        }
    }

    #[test]
    fn top_k_share_bounds() {
        let (lib, m) = setup();
        let w = Workload::derive(&lib, &m);
        assert!(w.top_k_share(0) == 0.0);
        assert!((w.top_k_share(4) - 1.0).abs() < 1e-12);
        assert!(w.top_k_share(1) > 0.25); // 4 proteins, skewed sizes
    }

    #[test]
    fn reference_total_renders_like_the_paper() {
        assert_eq!(phase1_reference_total().to_string(), "1,488:237:19:45:54");
    }

    #[test]
    #[should_panic(expected = "must agree in size")]
    fn size_mismatch_rejected() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 13);
        let m = CostMatrix::from_raw(2, vec![1.0; 4]);
        total_cpu_seconds(&lib, &m);
    }
}

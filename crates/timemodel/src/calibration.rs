//! The calibration campaign.
//!
//! §4.1: "We launched the MAXDo program on four clusters with similar nodes
//! (i.e. dual Opteron 246 @ 2 Ghz) on the Grid'5000 platform. 640
//! processors were used for this experiment during one day. This
//! experimental run gives us the complete matrix Mct of computing time."
//!
//! [`CalibrationCampaign`] reproduces that run: one job per ordered protein
//! couple (168² = 28 224 jobs), each measuring the per-position compute
//! time, scheduled on `processors` dedicated reference processors with the
//! classic LPT (longest processing time first) list-scheduling rule. The
//! report carries the measured matrix, the total CPU time the campaign
//! consumed, and its makespan — so the paper's "640 processors for one day"
//! claim can be checked directly.

use crate::matrix::CostMatrix;
use maxdo::energy::EnergyParams;
use maxdo::minimize::MinimizeParams;
use maxdo::{CostModel, DockingEngine, ProteinLibrary};
use metrics::Ydhms;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration of a calibration campaign.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationCampaign {
    /// Number of dedicated processors (the paper used 640).
    pub processors: usize,
}

impl Default for CalibrationCampaign {
    fn default() -> Self {
        Self { processors: 640 }
    }
}

/// Outcome of a calibration campaign.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// The measured computation-time matrix.
    pub matrix: CostMatrix,
    /// Number of calibration jobs (`n²`).
    pub jobs: usize,
    /// Processors used.
    pub processors: usize,
    /// Total CPU time consumed by the campaign (sum of all jobs).
    pub total_cpu: Ydhms,
    /// Campaign wall-clock makespan under LPT scheduling, seconds.
    pub makespan_seconds: f64,
}

impl CalibrationReport {
    /// Whether the campaign fits in one wall-clock day, as the paper's did.
    pub fn fits_in_one_day(&self) -> bool {
        self.makespan_seconds <= 86_400.0
    }
}

impl CalibrationCampaign {
    /// Runs the campaign analytically: measures each couple once via the
    /// cost model (each calibration job computes one starting position, so
    /// its duration *is* the matrix entry).
    pub fn run(&self, library: &ProteinLibrary, model: &CostModel) -> CalibrationReport {
        assert!(self.processors > 0, "need at least one processor");
        let matrix = CostMatrix::from_cost_model(library, model);
        let makespan_seconds = lpt_makespan(matrix.values(), self.processors);
        let total: f64 = matrix.values().iter().sum();
        CalibrationReport {
            jobs: matrix.len() * matrix.len(),
            processors: self.processors,
            total_cpu: Ydhms::from_seconds_f64(total),
            makespan_seconds,
            matrix,
        }
    }
}

/// Longest-processing-time-first list scheduling: returns the makespan of
/// running `jobs` on `processors` identical machines.
pub fn lpt_makespan(jobs: &[f64], processors: usize) -> f64 {
    assert!(processors > 0);
    let mut sorted: Vec<f64> = jobs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).expect("no NaN"));
    // Min-heap of processor loads, keyed by total-ordered bits.
    let mut heap: BinaryHeap<Reverse<(u64, u32)>> =
        (0..processors as u32).map(|i| Reverse((0u64, i))).collect();
    let mut loads = vec![0.0f64; processors];
    for job in sorted {
        let Reverse((_, idx)) = heap.pop().expect("non-empty heap");
        loads[idx as usize] += job;
        heap.push(Reverse((loads[idx as usize].to_bits(), idx)));
    }
    loads.into_iter().fold(0.0, f64::max)
}

/// Measures a *kernel-derived* compute-work matrix by actually running the
/// docking kernel for one starting position per couple, in parallel.
///
/// The unit is abstract work (energy evaluations × bead-pair count), not
/// seconds; tests use it to verify that the analytic [`CostModel`] ranks
/// couples like the real kernel does. Only sensible for small libraries.
pub fn measure_matrix_with_kernel(
    library: &ProteinLibrary,
    minimize_params: &MinimizeParams,
) -> CostMatrix {
    let proteins = library.proteins();
    let n = proteins.len();
    let data: Vec<f64> = proteins
        .par_iter()
        .flat_map_iter(|p1| {
            proteins.iter().map(move |p2| {
                let engine =
                    DockingEngine::new(p1, p2, 1, EnergyParams::default(), *minimize_params);
                let out = engine.dock_position(1);
                (out.evaluations as f64) * (p1.bead_count() * p2.bead_count()) as f64
            })
        })
        .collect();
    CostMatrix::from_raw(n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::LibraryConfig;

    #[test]
    fn lpt_single_processor_sums_jobs() {
        assert_eq!(lpt_makespan(&[3.0, 1.0, 2.0], 1), 6.0);
    }

    #[test]
    fn lpt_perfect_split() {
        // Two processors, jobs that split evenly.
        let m = lpt_makespan(&[4.0, 3.0, 2.0, 1.0], 2);
        assert_eq!(m, 5.0);
    }

    #[test]
    fn lpt_lower_bound_is_respected() {
        let jobs = [7.0, 5.0, 4.0, 3.0, 3.0, 2.0];
        let total: f64 = jobs.iter().sum();
        for p in 1..=4 {
            let m = lpt_makespan(&jobs, p);
            assert!(m >= total / p as f64 - 1e-12);
            assert!(m >= 7.0); // at least the longest job
                               // LPT is a 4/3-approximation of the optimum (≥ both bounds).
            assert!(m <= (total / p as f64).max(7.0) * 4.0 / 3.0 + 1e-12);
        }
    }

    #[test]
    fn lpt_more_processors_never_slower() {
        let jobs: Vec<f64> = (1..30).map(|i| (i * 7 % 13) as f64 + 1.0).collect();
        let mut prev = f64::INFINITY;
        for p in 1..8 {
            let m = lpt_makespan(&jobs, p);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn campaign_report_is_consistent() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(6), 5);
        let model = CostModel::with_kappa(1e-3);
        let report = CalibrationCampaign { processors: 4 }.run(&lib, &model);
        assert_eq!(report.jobs, 36);
        assert_eq!(report.processors, 4);
        let total: f64 = report.matrix.values().iter().sum();
        assert_eq!(report.total_cpu, Ydhms::from_seconds_f64(total));
        assert!(report.makespan_seconds >= total / 4.0 - 1e-9);
        assert!(report.makespan_seconds <= total);
    }

    #[test]
    fn kernel_measure_produces_positive_matrix() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 19);
        let m = measure_matrix_with_kernel(
            &lib,
            &MinimizeParams {
                max_iterations: 4,
                ..Default::default()
            },
        );
        assert_eq!(m.len(), 2);
        assert!(m.values().iter().all(|&v| v > 0.0));
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_processors_rejected() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 19);
        CalibrationCampaign { processors: 0 }.run(&lib, &CostModel::with_kappa(1.0));
    }
}

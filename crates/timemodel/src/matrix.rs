//! The computation-time matrix `Mct`.
//!
//! Entry `(i, j)` is the reference-processor CPU time, in seconds, for one
//! starting position (all 21 orientation couples) of receptor `pᵢ` docked
//! with ligand `pⱼ` — what the paper measures once per couple on Grid'5000
//! and then scales linearly (§4.1).

use maxdo::{CostModel, ProteinLibrary};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A dense square matrix of per-position compute times (seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostMatrix {
    n: usize,
    /// Row-major `n × n` seconds.
    data: Vec<f64>,
}

impl CostMatrix {
    /// Builds the matrix from raw row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != n²` or any entry is not finite-positive.
    pub fn from_raw(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "matrix data must be n²");
        assert!(
            data.iter().all(|&v| v.is_finite() && v > 0.0),
            "compute times must be positive and finite"
        );
        Self { n, data }
    }

    /// Evaluates the cost model over every ordered couple of a library —
    /// the analytic equivalent of the Grid'5000 calibration run
    /// (parallelised with rayon exactly because it is embarrassingly
    /// parallel, like the original).
    pub fn from_cost_model(library: &ProteinLibrary, model: &CostModel) -> Self {
        let proteins = library.proteins();
        let n = proteins.len();
        let data: Vec<f64> = proteins
            .par_iter()
            .flat_map_iter(|p1| {
                proteins
                    .iter()
                    .map(move |p2| model.cost_per_position(p1, p2))
            })
            .collect();
        Self { n, data }
    }

    /// The phase-I reference matrix: phase-1 catalog × reference cost
    /// model.
    pub fn phase1(library: &ProteinLibrary) -> Self {
        Self::from_cost_model(library, &CostModel::reference(library))
    }

    /// Matrix dimension (number of proteins).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for an empty matrix (never constructed by the builders).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Per-position compute time of couple `(receptor, ligand)`, seconds.
    pub fn get(&self, receptor: usize, ligand: usize) -> f64 {
        assert!(receptor < self.n && ligand < self.n, "index out of range");
        self.data[receptor * self.n + ligand]
    }

    /// The receptor-major row of one receptor.
    pub fn row(&self, receptor: usize) -> &[f64] {
        assert!(receptor < self.n, "index out of range");
        &self.data[receptor * self.n..(receptor + 1) * self.n]
    }

    /// All entries, row-major.
    pub fn values(&self) -> &[f64] {
        &self.data
    }

    /// Sum of one receptor's row — the per-starting-position cost of
    /// docking that receptor against the whole set.
    pub fn row_sum(&self, receptor: usize) -> f64 {
        self.row(receptor).iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::LibraryConfig;

    fn small() -> (ProteinLibrary, CostMatrix) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(5), 77);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(1e-3));
        (lib, m)
    }

    #[test]
    fn matrix_shape_and_access() {
        let (_, m) = small();
        assert_eq!(m.len(), 5);
        assert!(!m.is_empty());
        assert_eq!(m.row(2).len(), 5);
        assert_eq!(m.get(2, 3), m.row(2)[3]);
        assert_eq!(m.values().len(), 25);
    }

    #[test]
    fn matrix_matches_cost_model() {
        let (lib, m) = small();
        let model = CostModel::with_kappa(1e-3);
        for (i, p1) in lib.proteins().iter().enumerate() {
            for (j, p2) in lib.proteins().iter().enumerate() {
                assert_eq!(m.get(i, j), model.cost_per_position(p1, p2));
            }
        }
    }

    #[test]
    fn matrix_is_thread_count_independent() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(6), 13);
        let model = CostModel::with_kappa(1e-3);
        let single = rayon::with_threads(1, || CostMatrix::from_cost_model(&lib, &model));
        for threads in [2, 4, 8] {
            let multi = rayon::with_threads(threads, || CostMatrix::from_cost_model(&lib, &model));
            // Bit-level equality: the parallel collect preserves order,
            // so every float is produced by the same expression.
            let same = single
                .values()
                .iter()
                .zip(multi.values())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "threads = {threads}");
        }
    }

    #[test]
    fn matrix_is_asymmetric() {
        let (_, m) = small();
        assert_ne!(m.get(0, 1), m.get(1, 0));
    }

    #[test]
    fn row_sum() {
        let (_, m) = small();
        let expect: f64 = (0..5).map(|j| m.get(1, j)).sum();
        assert!((m.row_sum(1) - expect).abs() < 1e-12);
    }

    #[test]
    fn from_raw_round_trip() {
        let m = CostMatrix::from_raw(2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "must be n²")]
    fn from_raw_validates_shape() {
        CostMatrix::from_raw(2, vec![1.0; 3]);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn from_raw_rejects_nonpositive() {
        CostMatrix::from_raw(1, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_bounds_checked() {
        let (_, m) = small();
        m.get(5, 0);
    }
}

//! The §4.1 behaviour model of the MAXDo program.
//!
//! Before the HCMD project could be launched on World Community Grid, the
//! authors had to *model the behaviour* of MAXDo: establish that its
//! computing time is reproducible and linear in both `irot` and `isep`,
//! measure the 168×168 computation-time matrix on a dedicated grid
//! (Grid'5000, 640 Opteron 2 GHz processors for one day), and derive the
//! total workload via formula (1). This crate is that whole section:
//!
//! * [`matrix`] — the computation-time matrix `Mct`;
//! * [`calibration`] — the calibration campaign that measures it;
//! * [`linear`] — the Figure 3 linearity study;
//! * [`workload`] — formula (1), per-protein workloads, totals;
//! * [`stats`] — the Table 1 summary.

pub mod calibration;
pub mod linear;
pub mod matrix;
pub mod noise;
pub mod stats;
pub mod workload;

pub use calibration::{CalibrationCampaign, CalibrationReport};
pub use linear::{nrot_linearity, nsep_linearity, LinearityStudy};
pub use matrix::CostMatrix;
pub use noise::perturb_matrix;
pub use stats::{table1, Table1};
pub use workload::{phase1_reference_total, total_cpu_seconds, Workload};

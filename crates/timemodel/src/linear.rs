//! The Figure 3 linearity study.
//!
//! §4.1 establishes, over 400 random couples with correlation coefficients
//! "always around 0.99", that MAXDo's computing time is linear in the
//! number of orientations at fixed `isep` (Fig. 3a) and linear in the
//! number of starting positions at fixed `irot` (Fig. 3b). This module
//! runs that study against the *real* docking kernel: it measures the
//! cumulative computational work of computing `1..=k` orientation couples
//! (resp. starting positions) and fits a line.

use maxdo::energy::EnergyParams;
use maxdo::minimize::MinimizeParams;
use maxdo::{DockingEngine, Protein};
use metrics::LinearFit;
use serde::{Deserialize, Serialize};

/// The measured series and its fit, for one couple and one swept axis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearityStudy {
    /// Swept parameter values (number of orientations or positions).
    pub xs: Vec<f64>,
    /// Cumulative work at each value (energy evaluations weighted by
    /// bead-pair count — proportional to CPU time).
    pub ys: Vec<f64>,
    /// Least-squares fit `y = a·x + b`.
    pub fit: LinearFit,
}

impl LinearityStudy {
    /// Pearson correlation coefficient of the series (the paper's figure
    /// of merit: "always around 0.99").
    pub fn r(&self) -> f64 {
        self.fit.r
    }
}

/// Work unit: evaluations × bead-pair count of the couple.
fn work(engine: &DockingEngine<'_>, evaluations: u64) -> f64 {
    evaluations as f64 * (engine.receptor().bead_count() * engine.ligand().bead_count()) as f64
}

/// Figure 3(a): cumulative work of computing orientation couples
/// `1..=k` for `k ∈ [1, max_rot]` at a fixed starting position.
pub fn nrot_linearity(
    receptor: &Protein,
    ligand: &Protein,
    max_rot: u32,
    minimize_params: &MinimizeParams,
) -> LinearityStudy {
    assert!((1..=21).contains(&max_rot), "max_rot must be in 1..=21");
    let engine = DockingEngine::new(
        receptor,
        ligand,
        1,
        EnergyParams::default(),
        *minimize_params,
    );
    let mut cumulative = 0.0;
    let mut xs = Vec::with_capacity(max_rot as usize);
    let mut ys = Vec::with_capacity(max_rot as usize);
    for irot in 1..=max_rot {
        let (_, evals) = engine.dock_cell(1, irot);
        cumulative += work(&engine, evals);
        xs.push(irot as f64);
        ys.push(cumulative);
    }
    let fit = LinearFit::fit(&xs, &ys).unwrap_or(LinearFit {
        slope: ys[0],
        intercept: 0.0,
        r: 1.0,
    });
    LinearityStudy { xs, ys, fit }
}

/// Figure 3(b): cumulative work of computing starting positions `1..=k`
/// for `k ∈ [1, max_sep]` at a fixed orientation couple.
pub fn nsep_linearity(
    receptor: &Protein,
    ligand: &Protein,
    max_sep: u32,
    minimize_params: &MinimizeParams,
) -> LinearityStudy {
    assert!(max_sep >= 1, "max_sep must be at least 1");
    let engine = DockingEngine::new(
        receptor,
        ligand,
        max_sep,
        EnergyParams::default(),
        *minimize_params,
    );
    let mut cumulative = 0.0;
    let mut xs = Vec::with_capacity(max_sep as usize);
    let mut ys = Vec::with_capacity(max_sep as usize);
    for isep in 1..=max_sep {
        let (_, evals) = engine.dock_cell(isep, 1);
        cumulative += work(&engine, evals);
        xs.push(isep as f64);
        ys.push(cumulative);
    }
    let fit = LinearFit::fit(&xs, &ys).unwrap_or(LinearFit {
        slope: ys[0],
        intercept: 0.0,
        r: 1.0,
    });
    LinearityStudy { xs, ys, fit }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{LibraryConfig, ProteinLibrary};

    fn pair() -> ProteinLibrary {
        ProteinLibrary::generate(LibraryConfig::tiny(2), 61)
    }

    fn mp() -> MinimizeParams {
        MinimizeParams {
            max_iterations: 8,
            ..Default::default()
        }
    }

    #[test]
    fn nrot_series_is_linear_like_fig3a() {
        let lib = pair();
        let s = nrot_linearity(&lib.proteins()[0], &lib.proteins()[1], 12, &mp());
        assert_eq!(s.xs.len(), 12);
        assert!(
            s.r() > 0.99,
            "correlation {} below the paper's ~0.99",
            s.r()
        );
        assert!(s.fit.slope > 0.0);
    }

    #[test]
    fn nsep_series_is_linear_like_fig3b() {
        let lib = pair();
        let s = nsep_linearity(&lib.proteins()[0], &lib.proteins()[1], 10, &mp());
        assert_eq!(s.xs.len(), 10);
        assert!(
            s.r() > 0.99,
            "correlation {} below the paper's ~0.99",
            s.r()
        );
    }

    #[test]
    fn cumulative_work_is_monotone() {
        let lib = pair();
        let s = nrot_linearity(&lib.proteins()[0], &lib.proteins()[1], 6, &mp());
        assert!(s.ys.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn single_point_study() {
        let lib = pair();
        let s = nrot_linearity(&lib.proteins()[0], &lib.proteins()[1], 1, &mp());
        assert_eq!(s.xs.len(), 1);
        assert_eq!(s.fit.intercept, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be in 1..=21")]
    fn nrot_range_validated() {
        let lib = pair();
        nrot_linearity(&lib.proteins()[0], &lib.proteins()[1], 22, &mp());
    }
}

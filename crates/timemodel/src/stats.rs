//! The Table 1 summary of the computation-time matrix.
//!
//! > Table 1: Statistic values of the computation time matrix in seconds.
//! > average 671 — standard deviation 968,04 — min 6 — max 46347 —
//! > median 384
//!
//! plus the two §4.1 remarks tied to it: the 1,488-year total and the ten
//! proteins carrying ~30 % of the processing time.

use crate::matrix::CostMatrix;
use crate::workload::Workload;
use maxdo::ProteinLibrary;
use metrics::{Summary, Ydhms};
use serde::{Deserialize, Serialize};

/// The paper's published Table 1 values (seconds), for comparison.
pub const PAPER_MEAN: f64 = 671.0;
/// Paper standard deviation.
pub const PAPER_STD_DEV: f64 = 968.04;
/// Paper minimum.
pub const PAPER_MIN: f64 = 6.0;
/// Paper maximum.
pub const PAPER_MAX: f64 = 46_347.0;
/// Paper median.
pub const PAPER_MEDIAN: f64 = 384.0;

/// Everything §4.1 reports about the measured matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1 {
    /// The five summary statistics of the matrix entries.
    pub summary: Summary,
    /// Formula (1) total over the library.
    pub total: Ydhms,
    /// Share of total processing time carried by the 10 heaviest proteins.
    pub top10_share: f64,
    /// Minimal (one-position) workunit count.
    pub minimal_workunits: u64,
}

/// Computes Table 1 for a library/matrix pair.
pub fn table1(library: &ProteinLibrary, matrix: &CostMatrix) -> Table1 {
    let summary = Summary::of(matrix.values()).expect("non-empty matrix");
    let workload = Workload::derive(library, matrix);
    Table1 {
        summary,
        total: workload.total(),
        top10_share: workload.top_k_share(10),
        minimal_workunits: workload.minimal_workunits,
    }
}

impl Table1 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        format!(
            "{:>10} {:>20} {:>8} {:>8} {:>8}\n{}\n\
             total cpu time (formula 1): {}\n\
             top-10 protein share of processing time: {:.0}%\n\
             potential minimal workunits: {}",
            "average",
            "standard deviation",
            "min",
            "max",
            "median",
            self.summary.table1_row(),
            self.total,
            self.top10_share * 100.0,
            self.minimal_workunits,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{CostModel, LibraryConfig};

    #[test]
    fn table1_fields_are_consistent() {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(5), 3);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(1e-3));
        let t = table1(&lib, &m);
        assert_eq!(t.summary.count, 25);
        assert!(t.summary.min <= t.summary.median && t.summary.median <= t.summary.max);
        assert!(t.top10_share <= 1.0 + 1e-12);
        let rendered = t.render();
        assert!(rendered.contains("average"));
        assert!(rendered.contains("total cpu time"));
    }

    /// The headline reproduction check: the phase-I catalog matrix must
    /// land in the paper's Table 1 bands. (This is the repo's TAB1
    /// experiment in miniature; the bench binary prints the full table.)
    #[test]
    fn phase1_matrix_reproduces_table1_bands() {
        let lib = ProteinLibrary::phase1_catalog();
        let m = CostMatrix::phase1(&lib);
        let t = table1(&lib, &m);
        let s = t.summary;
        assert_eq!(s.count, 168 * 168);
        // Mean is calibrated exactly.
        assert!((s.mean - PAPER_MEAN).abs() < 1.0, "mean {}", s.mean);
        // σ, median within 10 %; min/max within a small factor (they are
        // extreme order statistics of a synthetic draw).
        assert!(
            (s.std_dev - PAPER_STD_DEV).abs() / PAPER_STD_DEV < 0.10,
            "std {}",
            s.std_dev
        );
        assert!(
            (s.median - PAPER_MEDIAN).abs() / PAPER_MEDIAN < 0.10,
            "median {}",
            s.median
        );
        assert!(s.min < 5.0 * PAPER_MIN, "min {}", s.min);
        assert!(
            s.max > PAPER_MAX / 2.0 && s.max < PAPER_MAX * 2.0,
            "max {}",
            s.max
        );
        // Total within 5 % of 1,488 years.
        let total_years = t.total.total_years();
        let paper_years = crate::workload::phase1_reference_total().total_years();
        assert!(
            (total_years - paper_years).abs() / paper_years < 0.05,
            "total {total_years} vs paper {paper_years}"
        );
        // ~10 proteins ≈ 30 % of the time (allow 25–60 %: the share is an
        // emergent property of the skew).
        assert!(
            (0.25..0.60).contains(&t.top10_share),
            "top10 {}",
            t.top10_share
        );
    }
}

//! Calibration measurement noise and its downstream effect.
//!
//! §4.1 leans on MAXDo's reproducible computing time, but the single
//! Grid'5000 measurement per couple still carries noise (shared nodes,
//! cache effects), and the b = 0 linear simplification discards the
//! intercept. This module perturbs a measured matrix with multiplicative
//! log-normal noise and lets callers quantify how robust the §4.2
//! packaging is to calibration error — if a ±10 % mismeasurement shifted
//! workunit counts wildly, the whole slice-by-estimate design would be
//! fragile. (It isn't: the ablation binary shows counts move by less than
//! the noise itself.)

use crate::matrix::CostMatrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Returns a copy of `matrix` with each entry multiplied by an
/// independent log-normal factor of median 1 and the given σ(log).
///
/// Deterministic in `seed`.
pub fn perturb_matrix(matrix: &CostMatrix, sigma_log: f64, seed: u64) -> CostMatrix {
    assert!(sigma_log >= 0.0, "sigma must be non-negative");
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xCA11_B8A7);
    let data: Vec<f64> = matrix
        .values()
        .iter()
        .map(|&v| {
            let u1: f64 = rng.gen::<f64>().max(1e-12);
            let u2: f64 = rng.gen();
            let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
            v * (sigma_log * z).exp()
        })
        .collect();
    CostMatrix::from_raw(matrix.len(), data)
}

/// Relative change of a scalar under a perturbation: `|a − b| / b`.
pub fn relative_shift(perturbed: f64, reference: f64) -> f64 {
    assert!(reference != 0.0, "reference must be non-zero");
    (perturbed - reference).abs() / reference.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use maxdo::{CostModel, LibraryConfig, ProteinLibrary};

    fn matrix() -> (ProteinLibrary, CostMatrix) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(5), 44);
        let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.5));
        (lib, m)
    }

    #[test]
    fn zero_noise_is_identity() {
        let (_, m) = matrix();
        let p = perturb_matrix(&m, 0.0, 1);
        assert_eq!(p, m);
    }

    #[test]
    fn perturbation_is_deterministic_and_seed_sensitive() {
        let (_, m) = matrix();
        let a = perturb_matrix(&m, 0.1, 7);
        let b = perturb_matrix(&m, 0.1, 7);
        let c = perturb_matrix(&m, 0.1, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn noise_preserves_the_total_to_first_order() {
        // Log-normal of median 1 has mean e^{σ²/2}: for σ = 0.1 the total
        // shifts by ≈ 0.5 %, far under the noise amplitude.
        let (lib, m) = matrix();
        let p = perturb_matrix(&m, 0.1, 3);
        let t0 = crate::total_cpu_seconds(&lib, &m);
        let t1 = crate::total_cpu_seconds(&lib, &p);
        assert!(
            relative_shift(t1, t0) < 0.05,
            "total moved {:.3}",
            relative_shift(t1, t0)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_sigma_rejected() {
        let (_, m) = matrix();
        perturb_matrix(&m, -0.1, 1);
    }
}

//! Run the full HCMD phase-I campaign on the simulated World Community
//! Grid (scaled), and print everything §5–§7 of the paper reports.
//!
//! Run with: `cargo run --release --example campaign [scale] [seed]`
//! (default scale 1/50, seed 2007; scale 1 is the full 3.6-million-workunit
//! campaign and takes a few minutes).
//!
//! Progress is reported through the telemetry event log rather than ad-hoc
//! prints: build with `--features telemetry` to stream structured JSONL
//! records (run/phase spans, workunit lifecycle, day summaries) to
//! `target/telemetry/example_campaign.jsonl` and to get the live metric
//! table on stderr when the run ends.

use gridsim::ProjectPhases;
use hcmd::campaign::Phase1Campaign;
use hcmd::phase2::Phase2Assumptions;
use hcmd::phases::{phase_summaries, render_phase_table};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: u32 = args.next().and_then(|s| s.parse().ok()).unwrap_or(50);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2007);

    if telemetry::ENABLED {
        let path = std::path::Path::new("target/telemetry/example_campaign.jsonl");
        match telemetry::install_jsonl(path) {
            Ok(()) => eprintln!("telemetry: event log -> {}", path.display()),
            Err(e) => eprintln!("telemetry: cannot open {}: {e}", path.display()),
        }
    }
    let scale64 = u64::from(scale);
    telemetry::emit(None, move || telemetry::Event::RunStart {
        bin: "example_campaign".to_string(),
        seed,
        scale_divisor: scale64,
    });

    telemetry::emit(None, || telemetry::Event::PhaseStart {
        name: "simulation".to_string(),
    });
    let t0 = Instant::now();
    let report = Phase1Campaign::new(scale, seed).run();
    let sim_wall = t0.elapsed().as_secs_f64();
    telemetry::emit(None, move || telemetry::Event::PhaseEnd {
        name: "simulation".to_string(),
        wall_seconds: sim_wall,
    });

    println!("=== §4.1 / Table 1: the compute-time matrix ===");
    println!("{}\n", report.table1.render());

    println!("=== §4.2: production packaging ===");
    println!("{}", report.distribution.caption());
    println!(
        "mean estimated workunit: {}\n",
        report.distribution.mean_hms()
    );

    println!("=== §5–§6: the campaign ===");
    println!("{}\n", report.render_summary());

    println!("=== Figure 6(a): phases ===");
    let phases = ProjectPhases::hcmd_phase1();
    println!(
        "{}",
        render_phase_table(&phase_summaries(&report.trace, &phases))
    );

    println!("=== Table 2: volunteer vs dedicated grid ===");
    let sd = report.trace.speed_down();
    let end = report.trace.completion_day.unwrap_or(182);
    let t2 = hcmd::table2(
        report.trace.mean_project_vftp(0, end),
        report.trace.mean_project_vftp(76, end),
        sd.raw_factor(),
    );
    println!("{}", t2.render());

    println!("=== Table 3: phase II projection ===");
    let assumptions = Phase2Assumptions::paper()
        .with_measured_phase1(report.trace.consumed_cpu_seconds() * scale as f64, 16.0);
    let projection = assumptions.project();
    println!("{}", projection.render_table3(&assumptions));
    println!(
        "at the phase-I rate, phase II would take {:.0} weeks; finishing in 40 weeks \
         needs {:.0} VFTP ≈ {:.2} M WCG members ({:.2} M new volunteers)",
        projection.weeks_at_phase1_rate,
        projection.phase2_vftp,
        projection.wcg_members_needed / 1e6,
        projection.new_members_needed / 1e6
    );

    let (wall, events) = (t0.elapsed().as_secs_f64(), report.trace.events_processed);
    telemetry::emit(None, move || telemetry::Event::RunEnd {
        wall_seconds: wall,
        events_processed: events,
    });
    telemetry::shutdown();
    if telemetry::ENABLED {
        eprintln!("\n{}", telemetry::summary());
    }
}

//! The downstream science: binding-site identification, partner ranking,
//! and the phase-II search reduction.
//!
//! Phase I computed docking maps to build "a database of such information"
//! (§2) on protein–protein interactions; §7 plans to use it to cut the
//! phase-II search by ×100. This example runs that whole loop on a small
//! couple with the real kernel:
//!
//! 1. full cross-docking map;
//! 2. contact-propensity analysis → predicted binding site;
//! 3. partner ranking across several ligands;
//! 4. site-filtered (phase-II style) re-docking: how much cheaper, and
//!    does it still find the strong minima?
//!
//! Run with: `cargo run --release --example interface_analysis`

use maxdo::interface::{contact_propensity, rank_partners};
use maxdo::{
    filter_search, DockingEngine, EnergyParams, LibraryConfig, MinimizeParams, ProteinId,
    ProteinLibrary,
};

fn main() {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(4), 42);
    let receptor = library.protein(ProteinId(0));
    let params = EnergyParams::default();
    let mp = MinimizeParams {
        max_iterations: 60,
        ..Default::default()
    };

    // 1. Dock the receptor against three candidate partners.
    println!("docking {} against 3 candidate partners...", receptor.name);
    let mut maps = Vec::new();
    for lid in 1..4u32 {
        let engine = DockingEngine::for_couple(&library, ProteinId(0), ProteinId(lid), params, mp);
        let nsep = engine.nsep().min(12);
        let out = engine.dock_range(1, nsep);
        println!(
            "  vs {}: {} cells, best Etot {:.2} kcal/mol",
            library.protein(ProteinId(lid)).name,
            out.rows.len(),
            out.rows
                .iter()
                .map(|r| r.etot())
                .fold(f64::INFINITY, f64::min)
        );
        maps.push((ProteinId(lid), out.rows));
    }

    // 2. Partner ranking (the "functionally important partners" database).
    let ranking = rank_partners(
        &maps
            .iter()
            .map(|(id, rows)| (*id, rows.as_slice()))
            .collect::<Vec<_>>(),
    );
    println!("\npartner ranking (strongest interaction first):");
    for (k, s) in ranking.iter().enumerate() {
        println!(
            "  {}. {}  best {:.2}  top-10 mean {:.2} kcal/mol",
            k + 1,
            library.protein(s.ligand).name,
            s.best_etot,
            s.top10_mean
        );
    }

    // 3. Binding site of the best partner.
    let best_partner = ranking[0].ligand;
    let rows = &maps.iter().find(|(id, _)| *id == best_partner).unwrap().1;
    let ligand = library.protein(best_partner);
    let cp = contact_propensity(receptor, ligand, rows, 0.2, &params);
    let site = cp.binding_site(0.5);
    println!(
        "\npredicted binding site: {} of {} beads (from {} low-energy poses)",
        site.len(),
        receptor.bead_count(),
        cp.poses
    );

    // 4. Phase-II style filtering around the predicted site.
    // Site direction from the propensity map, falling back to the best
    // pose's approach direction if the contact analysis came up empty.
    let rdir = maxdo::filter::site_direction(receptor, &cp, 0.5)
        .or_else(|| {
            rows.iter()
                .min_by(|a, b| a.etot().partial_cmp(&b.etot()).expect("finite"))
                .and_then(|r| r.position.normalized())
        })
        .expect("a docking map always has a best pose");
    let filtered = filter_search(
        receptor,
        ligand,
        library.nsep(ProteinId(0)),
        rdir,
        rdir, // reuse for the ligand in this demo
        30.0,
        90.0,
    );
    println!(
        "phase-II filter: {} -> {} docking cells (reduction x{:.0}; §7 targets x100 \
         with evolutionary data at scale)",
        filtered.original_cells,
        filtered.filtered_cells(),
        filtered.reduction_factor()
    );

    // Does the cheap search still find the strong minima? Dock only the
    // kept cells and compare.
    let engine = DockingEngine::for_couple(&library, ProteinId(0), best_partner, params, mp);
    let full_best = rows.iter().map(|r| r.etot()).fold(f64::INFINITY, f64::min);
    let mut filtered_best = f64::INFINITY;
    for &isep in filtered.kept_positions.iter().filter(|&&i| i <= 12) {
        for &irot in &filtered.kept_orientations {
            let (row, _) = engine.dock_cell(isep, irot);
            filtered_best = filtered_best.min(row.etot());
        }
    }
    println!("best Etot: full map {full_best:.2} vs filtered search {filtered_best:.2} kcal/mol");
}

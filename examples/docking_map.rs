//! Full cross-docking map of one couple, through the whole §5.2 pipeline.
//!
//! Docks every (isep, irot) cell of a small couple with the real kernel,
//! writes the MAXDo result files workunit by workunit, runs the three
//! validation checks, merges into the couple's single result file, and
//! prints the interaction-energy map — the scientific deliverable of the
//! HCMD project, end to end on one couple.
//!
//! Run with: `cargo run --release --example docking_map`

use maxdo::{
    DockingEngine, EnergyParams, LibraryConfig, MinimizeParams, ProteinId, ProteinLibrary,
};
use validation::checks::{check_batch, ValueRanges};
use validation::format::result_file_from_output;
use validation::merge_couple_files;

fn main() {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(2), 7);
    let (rid, lid) = (ProteinId(0), ProteinId(1));
    let engine = DockingEngine::for_couple(
        &library,
        rid,
        lid,
        EnergyParams::default(),
        MinimizeParams {
            max_iterations: 40,
            ..Default::default()
        },
    );
    let nsep = engine.nsep();
    println!(
        "docking {} x {}: {} starting positions x {} orientation couples",
        library.protein(rid).name,
        library.protein(lid).name,
        nsep,
        engine.nrot()
    );

    // Split the map into workunits of 3 starting positions each — a
    // miniature of the §4.2 packaging — and compute each one.
    let mut files = Vec::new();
    let mut isep = 1;
    while isep <= nsep {
        let end = (isep + 2).min(nsep);
        let output = engine.dock_range(isep, end);
        files.push(result_file_from_output(rid, lid, isep, end, &output));
        isep = end + 1;
    }
    println!("computed {} workunits", files.len());

    // §5.2: the three checks, then the merge.
    let failures = check_batch(rid, lid, &files, files.len(), &ValueRanges::default());
    assert!(failures.is_empty(), "validation failed: {failures:?}");
    println!("validation: all checks passed");
    let merged = merge_couple_files(files, nsep).expect("chunks tile the position range");
    println!(
        "merged result file: {} rows ({} expected)\n",
        merged.rows.len(),
        merged.expected_rows()
    );

    // The interaction-energy map: best Etot per starting position.
    println!("{:>5} {:>12} {:>7}", "isep", "best Etot", "irot");
    let mut global_best = &merged.rows[0];
    for isep in 1..=nsep {
        let best = merged
            .rows
            .iter()
            .filter(|r| r.isep == isep)
            .min_by(|a, b| a.etot().partial_cmp(&b.etot()).expect("finite"))
            .expect("rows for every position");
        if best.etot() < global_best.etot() {
            global_best = best;
        }
        println!("{:>5} {:>12.3} {:>7}", isep, best.etot(), best.irot);
    }
    println!(
        "\npredicted binding site: isep={} Etot={:.3} kcal/mol (Elj {:.3}, Eelec {:.3})",
        global_best.isep,
        global_best.etot(),
        global_best.elj,
        global_best.eelec
    );
}

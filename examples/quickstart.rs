//! Quickstart: dock one protein couple with the MAXDo kernel.
//!
//! Generates two small synthetic reduced-model proteins, runs the docking
//! search for a few starting positions, and prints the resulting
//! interaction-energy map — the `Etot(isep, irot, p1, p2)` values the HCMD
//! project computed 49 million times.
//!
//! Run with: `cargo run --release --example quickstart`

use maxdo::{
    DockingEngine, EnergyParams, LibraryConfig, MinimizeParams, ProteinId, ProteinLibrary,
};

fn main() {
    // Two synthetic proteins (~24 residues each) — small enough to dock
    // for real in milliseconds.
    let library = ProteinLibrary::generate(LibraryConfig::tiny(2), 42);
    let receptor = library.protein(ProteinId(0));
    let ligand = library.protein(ProteinId(1));
    println!(
        "receptor {}: {} beads, bounding radius {:.1} Å",
        receptor.name,
        receptor.bead_count(),
        receptor.bounding_radius()
    );
    println!(
        "ligand   {}: {} beads, bounding radius {:.1} Å\n",
        ligand.name,
        ligand.bead_count(),
        ligand.bounding_radius()
    );

    let engine = DockingEngine::for_couple(
        &library,
        ProteinId(0),
        ProteinId(1),
        EnergyParams::default(),
        MinimizeParams::default(),
    );

    // Dock the first 4 starting positions × all 21 orientation couples.
    let nsep = engine.nsep().min(4);
    let output = engine.dock_range(1, nsep);
    println!(
        "docked {} cells ({} energy evaluations)\n",
        output.rows.len(),
        output.evaluations
    );
    println!(
        "{:>5} {:>5} {:>10} {:>10} {:>10}",
        "isep", "irot", "Elj", "Eelec", "Etot"
    );
    let mut best = &output.rows[0];
    for row in &output.rows {
        if row.etot() < best.etot() {
            best = row;
        }
    }
    // Print the first orientation of each position plus the optimum.
    for row in output.rows.iter().filter(|r| r.irot == 1) {
        println!(
            "{:>5} {:>5} {:>10.3} {:>10.3} {:>10.3}",
            row.isep,
            row.irot,
            row.elj,
            row.eelec,
            row.etot()
        );
    }
    println!(
        "\nstrongest interaction: isep={} irot={} Etot={:.3} kcal/mol at ({:.1}, {:.1}, {:.1})",
        best.isep,
        best.irot,
        best.etot(),
        best.position.x,
        best.position.y,
        best.position.z
    );
}

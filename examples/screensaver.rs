//! A terminal rendition of the HCMD screensaver (Figure 5).
//!
//! The real agent showed "the name and the graphic of the two proteins
//! which are currently being docked, the value of the docking energies,
//! the current progress of the docking program". This example runs a real
//! workunit with the docking kernel, checkpointing between starting
//! positions (§4.3), and renders the same information as ASCII.
//!
//! Run with: `cargo run --release --example screensaver`

use maxdo::{
    DockingCheckpoint, DockingEngine, EnergyParams, LibraryConfig, MinimizeParams, ProteinId,
    ProteinLibrary,
};

fn main() {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(2), 1234);
    let (rid, lid) = (ProteinId(0), ProteinId(1));
    let engine = DockingEngine::for_couple(
        &library,
        rid,
        lid,
        EnergyParams::default(),
        MinimizeParams {
            max_iterations: 25,
            ..Default::default()
        },
    );
    let nsep = engine.nsep().min(8);
    let mut checkpoint = DockingCheckpoint::new(1, nsep);

    println!("+----------------------------------------------------------+");
    println!("|        Help Cure Muscular Dystrophy  —  MAXDo agent       |");
    println!("+----------------------------------------------------------+");
    println!(
        "| docking {:>6} (receptor)  with  {:>6} (ligand)           |",
        library.protein(rid).name,
        library.protein(lid).name
    );

    while !checkpoint.is_complete() {
        let isep = checkpoint.next_isep;
        let output = engine.dock_position(isep);
        let best = output
            .rows
            .iter()
            .min_by(|a, b| a.etot().partial_cmp(&b.etot()).expect("finite"))
            .expect("21 rows");
        checkpoint.commit_position(output.clone());
        let filled = (checkpoint.progress() * 40.0).round() as usize;
        println!(
            "| [{:<40}] {:>3.0}%  Elj {:>8.2}  Eelec {:>8.2} |",
            "#".repeat(filled),
            checkpoint.progress() * 100.0,
            best.elj,
            best.eelec
        );
        // §4.3: the checkpoint is written between starting positions; a
        // kill here would lose at most the next position.
        let _saved = checkpoint.to_text();
    }

    let best = checkpoint
        .rows
        .iter()
        .min_by(|a, b| a.etot().partial_cmp(&b.etot()).expect("finite"))
        .expect("rows");
    println!("+----------------------------------------------------------+");
    println!(
        "| workunit complete: {} cells, best Etot {:>9.3} kcal/mol   |",
        checkpoint.rows.len(),
        best.etot()
    );
    println!("+----------------------------------------------------------+");
}

//! The Décrypthon pilot: a 6-protein cross-docking study on a dedicated
//! grid.
//!
//! §2: "This project follows a first study on 6 proteins which was
//! performed on the dedicated grid of the Decrypthon project. This study
//! argues that ... the docking program required a lot of cpu time and
//! produced promising scientific results."
//!
//! This example reruns that pilot end to end with the *real* kernel: a
//! 6-protein set, all 36 ordered couples docked, results validated and
//! merged, binding partners ranked per receptor, the best complex
//! exported as a PDB file, and the measured work extrapolated to the
//! 168-protein phase I — the argument that justified going to World
//! Community Grid.
//!
//! Run with: `cargo run --release --example pilot_study`
//!
//! Per-couple progress goes through the telemetry event log instead of
//! ad-hoc prints: build with `--features telemetry` to stream JSONL
//! records (one `ResultReturned` per docked couple, phase spans, run
//! markers) to `target/telemetry/example_pilot_study.jsonl` and to get
//! the kernel's live counters (energy evaluations, minimizer iterations,
//! per-couple wall time) on stderr at the end.

use maxdo::interface::rank_partners;
use maxdo::{
    DockingEngine, EnergyParams, LibraryConfig, MinimizeParams, Pose, ProteinId, ProteinLibrary,
};
use validation::format::result_file_from_output;
use validation::merge_couple_files;

/// Emits a phase span around `f` (no-op without the telemetry feature).
fn phase<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    telemetry::emit(None, move || telemetry::Event::PhaseStart {
        name: name.to_string(),
    });
    let t0 = std::time::Instant::now();
    let out = f();
    let wall = t0.elapsed().as_secs_f64();
    telemetry::emit(None, move || telemetry::Event::PhaseEnd {
        name: name.to_string(),
        wall_seconds: wall,
    });
    out
}

fn main() {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(6), 6);
    let params = EnergyParams::default();
    let mp = MinimizeParams {
        max_iterations: 30,
        ..Default::default()
    };

    if telemetry::ENABLED {
        let path = std::path::Path::new("target/telemetry/example_pilot_study.jsonl");
        match telemetry::install_jsonl(path) {
            Ok(()) => eprintln!("telemetry: event log -> {}", path.display()),
            Err(e) => eprintln!("telemetry: cannot open {}: {e}", path.display()),
        }
    }
    telemetry::emit(None, || telemetry::Event::RunStart {
        bin: "example_pilot_study".to_string(),
        seed: 6,
        scale_divisor: 1,
    });

    println!("Décrypthon pilot: 6 proteins, 36 ordered couples\n");
    let t0 = std::time::Instant::now();
    let mut total_cells = 0usize;
    let mut total_evals = 0u64;
    let mut maps: Vec<Vec<(ProteinId, Vec<maxdo::DockingRow>)>> = Vec::new();
    phase("docking", || {
        for r in 0..6u32 {
            let mut per_receptor = Vec::new();
            for l in 0..6u32 {
                if r == l {
                    continue;
                }
                let engine =
                    DockingEngine::for_couple(&library, ProteinId(r), ProteinId(l), params, mp);
                let nsep = engine.nsep().min(6); // pilot-sized map
                let out = engine.dock_range(1, nsep);
                total_cells += out.rows.len();
                total_evals += out.evaluations;
                // One event per docked couple — the pilot's progress feed.
                telemetry::emit(None, move || telemetry::Event::ResultReturned {
                    workunit: u64::from(r * 6 + l),
                    host: 0,
                    error: false,
                });
                // Through the §5.2 pipeline, as the real pilot archived them.
                let file = result_file_from_output(ProteinId(r), ProteinId(l), 1, nsep, &out);
                let merged = merge_couple_files(vec![file], nsep).expect("single chunk");
                per_receptor.push((ProteinId(l), merged.rows));
            }
            maps.push(per_receptor);
        }
    });
    let elapsed = t0.elapsed();
    println!("docked {total_cells} cells ({total_evals} energy evaluations) in {elapsed:?}\n");

    // Partner table: best partner per receptor.
    println!(
        "{:>10} {:>12} {:>14}",
        "receptor", "best partner", "top-10 mean"
    );
    for (r, per_receptor) in maps.iter().enumerate() {
        let refs: Vec<(ProteinId, &[maxdo::DockingRow])> = per_receptor
            .iter()
            .map(|(id, rows)| (*id, rows.as_slice()))
            .collect();
        let ranking = rank_partners(&refs);
        let best = &ranking[0];
        println!(
            "{:>10} {:>12} {:>11.2} kcal/mol",
            library.protein(ProteinId(r as u32)).name,
            library.protein(best.ligand).name,
            best.top10_mean
        );
    }

    // Export the single strongest complex for a molecular viewer.
    let mut strongest: Option<(ProteinId, ProteinId, maxdo::DockingRow)> = None;
    for (r, per_receptor) in maps.iter().enumerate() {
        for (l, rows) in per_receptor {
            for row in rows {
                if strongest
                    .as_ref()
                    .is_none_or(|(_, _, b)| row.etot() < b.etot())
                {
                    strongest = Some((ProteinId(r as u32), *l, *row));
                }
            }
        }
    }
    let (r, l, row) = strongest.expect("36 docked couples");
    let pdb = phase("export", || {
        maxdo::pdb::write_complex(
            library.protein(r),
            library.protein(l),
            &Pose::from_euler(row.orientation, row.position),
        )
    });
    let path = std::env::temp_dir().join("hcmd_pilot_best_complex.pdb");
    std::fs::write(&path, &pdb).expect("write pdb");
    println!(
        "\nstrongest complex {} + {} (Etot {:.2} kcal/mol) written to {}",
        library.protein(r).name,
        library.protein(l).name,
        row.etot(),
        path.display()
    );

    // The §2 argument: extrapolate the measured pilot work to phase I.
    let cells_per_sec = total_cells as f64 / elapsed.as_secs_f64();
    let full = ProteinLibrary::phase1_catalog();
    let phase1_cells: f64 = full
        .nsep_table()
        .iter()
        .map(|&n| n as f64 * 21.0 * 168.0)
        .sum();
    println!(
        "\npilot throughput on this machine: {cells_per_sec:.0} cells/s; the phase-I \
         map is {phase1_cells:.2e} cells — {:.0} machine-days at pilot size, and the \
         real proteins are ~100x heavier per cell: \"a perfect candidate for a \
         distributed grid such as World Community Grid\" (§4.1).",
        phase1_cells / cells_per_sec / 86_400.0
    );

    let wall = t0.elapsed().as_secs_f64();
    telemetry::emit(None, move || telemetry::Event::RunEnd {
        wall_seconds: wall,
        events_processed: 0,
    });
    telemetry::shutdown();
    if telemetry::ENABLED {
        eprintln!("\n{}", telemetry::summary());
    }
}

//! Explore the §4.2 packaging trade-off: sweep the target workunit
//! duration `h` and watch the workunit count, the mean duration and the
//! over-target tail move — the trade-off behind Figure 4 and behind the
//! operators' choice of h ≈ 4 h for production.
//!
//! Run with: `cargo run --release --example packaging_explorer`

use maxdo::{CostModel, ProteinLibrary};
use timemodel::CostMatrix;
use workunit::{distribution_report, CampaignPackage};

fn main() {
    println!("building the phase-I catalog and compute-time matrix...");
    let library = ProteinLibrary::phase1_catalog();
    let model = CostModel::reference(&library);
    let matrix = CostMatrix::from_cost_model(&library, &model);

    println!(
        "\n{:>6} {:>12} {:>14} {:>12} {:>14}",
        "h (h)", "workunits", "mean duration", "over target", "over target %"
    );
    for h_hours in [1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 24.0] {
        let pkg = CampaignPackage::new(&library, &matrix, h_hours * 3600.0);
        let rep = distribution_report(&pkg);
        println!(
            "{:>6} {:>12} {:>14} {:>12} {:>13.2}%",
            h_hours,
            rep.count,
            rep.mean_hms(),
            rep.over_target,
            100.0 * rep.over_target as f64 / rep.count as f64
        );
    }

    println!(
        "\npaper reference points: h = 10 h -> 1,364,476 workunits; \
         h = 4 h -> 3,599,937 workunits (Figure 4)."
    );
    println!(
        "The over-target tail is irreducible: couples whose single starting \
         position already exceeds h cannot be split finer (§4.2)."
    );
}

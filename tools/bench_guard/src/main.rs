//! Warn-only perf-regression guard for the committed bench baselines.
//!
//! Compares a fresh bench run against its committed baseline and prints
//! a warning when the fresh numbers regress past the tolerance. CI
//! machines are noisy and heterogeneous, so the guard never fails the
//! build on a perf delta — exit 0 with warnings on stderr; exit 2 only
//! when a report is missing, malformed, or of a different kind than its
//! baseline.
//!
//! ```text
//! bench_guard <baseline.json> <fresh.json> [--tolerance <fraction>]
//! ```
//!
//! The report kind is read from the `"bench"` field and dispatches the
//! comparison:
//!
//! * `sim_scale` (`BENCH_simscale.json`) — events/sec per fleet
//!   scenario, plus the PR-3 claim that the timing wheel stays ≥ 2x the
//!   heap at the 100k-host fleet (warn-only; `--quick` runs don't
//!   include that fleet).
//! * `netgrid_e2e` (`BENCH_netgrid.json`) — loopback workunits/sec and
//!   p99 request latency, plus a warning if the merged wire-level
//!   output diverged from the in-process baseline or a fault path went
//!   unexercised. Reports with the ops-endpoint columns also get
//!   warn-only ceilings on the ops throughput overhead and on the p99
//!   `/metrics` scrape latency; the journal/ops columns are null on
//!   mux-driven runs and simply skipped. Relative compares only apply
//!   between runs with the same fleet size — a `--quick` or `--agents`
//!   override measures a different experiment than the baseline.
//!   Reports with a scale campaign get an absolute warn-only ceiling on
//!   the mux fleet's p99 request latency. Reports with the trust
//!   comparison columns get warn-only floors on the redundancy saving
//!   and the quorum-rejection reduction from trust-adaptive
//!   replication, a wasted-compute sanity check, and warnings if the
//!   saboteur escaped quarantine or either trust run's merged output
//!   diverged. Reports with the `shard_campaigns` rows get, per row,
//!   warnings if the merged per-shard artifacts diverged from the
//!   single-server run, if the redirect count exceeded the request
//!   count (an agent is only ever bounced once per ask, so more
//!   redirects than asks means a steering loop), or if aggregate
//!   sharded throughput fell below 0.9x the single-server reference.
//!   Reports with the multi-campaign `campaign_rows` get a warn-only
//!   ceiling on the contended fair-share error (the 70/30 split must
//!   land within ±5%) and a warning if any hosted campaign's merged
//!   artifact diverged from a solo run of the same recipe.
//! * `frame_codec` (`BENCH_codec.json`) — per-frame encode/decode cost
//!   of the two wire codecs; warns when the binary codec fails to beat
//!   JSON or regresses past the tolerance against its baseline.

use serde::Value;
use std::process::ExitCode;

/// Minimum wheel-over-heap speedup the big fleets are expected to keep.
const EXPECTED_WHEEL_SPEEDUP: f64 = 2.0;
/// Hosts from which the speedup expectation applies.
const BIG_FLEET_HOSTS: f64 = 100_000.0;
/// Largest acceptable `(plain - journaled) / plain` throughput loss
/// from the write-ahead journal before the (warn-only) guard fires.
const JOURNAL_OVERHEAD_CEILING: f64 = 0.10;
/// Largest acceptable `(plain - ops) / plain` throughput loss from the
/// live observability endpoint before the (warn-only) guard fires. The
/// endpoint only copies a snapshot under the state mutex, so it should
/// cost essentially nothing.
const OPS_OVERHEAD_CEILING: f64 = 0.10;
/// Absolute warn-only ceiling on the p99 `/metrics` scrape round trip
/// over loopback. A scrape renders a copied snapshot off the hot path,
/// so anything slower than this means the ops thread is blocking.
const OPS_SCRAPE_P99_CEILING_MS: f64 = 50.0;
/// Absolute warn-only ceiling on the scale campaign's p99 request
/// latency — the PR-7 target: single-digit milliseconds with ten
/// thousand multiplexed volunteers on loopback.
const SCALE_P99_CEILING_MS: f64 = 10.0;
/// Smallest acceptable `(off - on) / off` redundancy saving from
/// trust-adaptive replication before the (warn-only) guard fires — the
/// PR-8 headline is a measured drop, so a run where trust saves
/// essentially nothing means graduation stopped happening.
const TRUST_REDUNDANCY_REDUCTION_FLOOR: f64 = 0.05;
/// Smallest acceptable `trust_off / trust_on` quorum-rejection ratio:
/// quarantining the saboteur is expected to at least halve the
/// rejections it can land.
const TRUST_REJECT_REDUCTION_FLOOR: f64 = 2.0;
/// Smallest acceptable sharded-over-single aggregate throughput before
/// the (warn-only) guard fires: splitting a campaign across shards buys
/// address-space and fault isolation, and steering is supposed to keep
/// the work moving — it must not cost more than ~10% of the wire.
const SHARD_THROUGHPUT_FLOOR_FRAC: f64 = 0.9;
/// Largest acceptable contended fair-share error in the multi-campaign
/// run: the deficit scheduler must hold a 70/30 split within ±5% of
/// the configured shares while both campaigns still have fresh work.
const CAMPAIGN_SHARE_ERROR_CEILING: f64 = 0.05;

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::parse_value(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

/// Flattens a report into `(hosts, wheel events/sec, wheel speedup)` rows.
fn scenario_rows(report: &Value, path: &str) -> Result<Vec<(f64, f64, f64)>, String> {
    let Some(Value::Seq(scenarios)) = report.get("scenarios") else {
        return Err(format!("{path}: no \"scenarios\" array"));
    };
    scenarios
        .iter()
        .map(|s| {
            let hosts = s.get("hosts").and_then(Value::as_f64);
            let eps = s
                .get("wheel")
                .and_then(|w| w.get("events_per_sec"))
                .and_then(Value::as_f64);
            let speedup = s.get("wheel_speedup").and_then(Value::as_f64);
            match (hosts, eps, speedup) {
                (Some(h), Some(e), Some(x)) => Ok((h, e, x)),
                _ => Err(format!("{path}: malformed scenario entry")),
            }
        })
        .collect()
}

/// The numbers the netgrid guard compares, pulled from one report.
struct NetgridSummary {
    /// Honest classic-fleet size; relative compares only make sense
    /// between equal fleets. `None` on pre-PR-7 reports.
    agents: Option<f64>,
    workunits_per_sec: f64,
    p99_ms: f64,
    timeout_reissues: u64,
    quorum_rejects: u64,
    merged_matches_baseline: bool,
    /// `(plain - journaled) / plain` throughput; `None` on reports from
    /// before the journal column existed.
    journal_overhead_frac: Option<f64>,
    journal_merged_matches_baseline: Option<bool>,
    /// `(plain - ops) / plain` throughput; `None` on reports from
    /// before the ops-endpoint columns existed.
    ops_overhead_frac: Option<f64>,
    ops_scrape_p99_ms: Option<f64>,
    ops_merged_matches_baseline: Option<bool>,
    /// Scale-campaign columns; `None`/zero when the campaign was
    /// skipped or the report predates it.
    scale_agents: Option<f64>,
    scale_workunits_per_sec: Option<f64>,
    scale_request_latency_p99_ms: Option<f64>,
    scale_merged_matches_baseline: Option<bool>,
    /// Trust-comparison columns; `None` on reports from before the
    /// trust pair existed.
    trust_redundancy_reduction_frac: Option<f64>,
    trust_off_quorum_rejects: Option<f64>,
    trust_on_quorum_rejects: Option<f64>,
    trust_off_wasted_ref_seconds: Option<f64>,
    trust_on_wasted_ref_seconds: Option<f64>,
    trust_saboteur_quarantined: Option<bool>,
    trust_off_merged_matches_baseline: Option<bool>,
    trust_on_merged_matches_baseline: Option<bool>,
    /// Sharded-campaign rows; `None` on reports from before the
    /// sharding block existed (or when `--shards 0` skipped it).
    shard_rows: Option<Vec<ShardRow>>,
    /// Contended fair-share error of the multi-campaign run; `None` on
    /// reports from before the multi-campaign block existed.
    campaign_share_error: Option<f64>,
    /// Per-hosted-campaign rows of the multi-campaign run; `None` on
    /// pre-multi-campaign reports.
    campaign_rows: Option<Vec<CampaignRow>>,
}

/// One `campaign_rows` entry, as far as the guard cares.
struct CampaignRow {
    name: String,
    share: f64,
    delivered_frac: f64,
    matches_solo_baseline: bool,
}

/// One `shard_campaigns` entry, as far as the guard cares.
struct ShardRow {
    shards: f64,
    trust: bool,
    requests: f64,
    redirects: f64,
    merged_matches_single: bool,
    throughput_vs_single_frac: f64,
}

fn netgrid_summary(report: &Value, path: &str) -> Result<NetgridSummary, String> {
    let f = |key: &str| {
        report
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric \"{key}\""))
    };
    let merged = match report.get("merged_matches_baseline") {
        Some(Value::Bool(b)) => *b,
        _ => return Err(format!("{path}: missing bool \"merged_matches_baseline\"")),
    };
    Ok(NetgridSummary {
        agents: report.get("agents").and_then(Value::as_f64),
        workunits_per_sec: f("workunits_per_sec")?,
        p99_ms: f("request_latency_p99_ms")?,
        timeout_reissues: f("timeout_reissues")? as u64,
        quorum_rejects: f("quorum_rejects")? as u64,
        merged_matches_baseline: merged,
        journal_overhead_frac: report.get("journal_overhead_frac").and_then(Value::as_f64),
        journal_merged_matches_baseline: match report.get("journal_merged_matches_baseline") {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        },
        ops_overhead_frac: report.get("ops_overhead_frac").and_then(Value::as_f64),
        ops_scrape_p99_ms: report.get("ops_scrape_p99_ms").and_then(Value::as_f64),
        ops_merged_matches_baseline: match report.get("ops_merged_matches_baseline") {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        },
        scale_agents: report.get("scale_agents").and_then(Value::as_f64),
        scale_workunits_per_sec: report
            .get("scale_workunits_per_sec")
            .and_then(Value::as_f64),
        scale_request_latency_p99_ms: report
            .get("scale_request_latency_p99_ms")
            .and_then(Value::as_f64),
        scale_merged_matches_baseline: match report.get("scale_merged_matches_baseline") {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        },
        trust_redundancy_reduction_frac: report
            .get("trust_redundancy_reduction_frac")
            .and_then(Value::as_f64),
        trust_off_quorum_rejects: report
            .get("trust_off_quorum_rejects")
            .and_then(Value::as_f64),
        trust_on_quorum_rejects: report
            .get("trust_on_quorum_rejects")
            .and_then(Value::as_f64),
        trust_off_wasted_ref_seconds: report
            .get("trust_off_wasted_ref_seconds")
            .and_then(Value::as_f64),
        trust_on_wasted_ref_seconds: report
            .get("trust_on_wasted_ref_seconds")
            .and_then(Value::as_f64),
        trust_saboteur_quarantined: match report.get("trust_saboteur_quarantined") {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        },
        trust_off_merged_matches_baseline: match report.get("trust_off_merged_matches_baseline") {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        },
        trust_on_merged_matches_baseline: match report.get("trust_on_merged_matches_baseline") {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        },
        shard_rows: match report.get("shard_campaigns") {
            Some(Value::Seq(rows)) => Some(
                rows.iter()
                    .map(|row| {
                        let f = |key: &str| {
                            row.get(key).and_then(Value::as_f64).ok_or_else(|| {
                                format!("{path}: shard row missing numeric \"{key}\"")
                            })
                        };
                        Ok(ShardRow {
                            shards: f("shards")?,
                            trust: matches!(row.get("trust"), Some(Value::Bool(true))),
                            requests: f("requests")?,
                            redirects: f("redirects")?,
                            merged_matches_single: matches!(
                                row.get("merged_matches_single"),
                                Some(Value::Bool(true))
                            ),
                            throughput_vs_single_frac: f("throughput_vs_single_frac")?,
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            ),
            _ => None,
        },
        campaign_share_error: report.get("campaign_share_error").and_then(Value::as_f64),
        campaign_rows: match report.get("campaign_rows") {
            Some(Value::Seq(rows)) => Some(
                rows.iter()
                    .map(|row| {
                        let f = |key: &str| {
                            row.get(key).and_then(Value::as_f64).ok_or_else(|| {
                                format!("{path}: campaign row missing numeric \"{key}\"")
                            })
                        };
                        let name = match row.get("name") {
                            Some(Value::Str(s)) => s.clone(),
                            _ => return Err(format!("{path}: campaign row missing \"name\"")),
                        };
                        Ok(CampaignRow {
                            name,
                            share: f("share")?,
                            delivered_frac: f("delivered_frac")?,
                            matches_solo_baseline: matches!(
                                row.get("matches_solo_baseline"),
                                Some(Value::Bool(true))
                            ),
                        })
                    })
                    .collect::<Result<Vec<_>, String>>()?,
            ),
            _ => None,
        },
    })
}

/// Warn-only comparison for a `netgrid_e2e` run: throughput floor, p99
/// latency ceiling, and the two correctness signals the e2e run must
/// carry (baseline-identical merge, both fault paths exercised).
fn guard_netgrid(base: &NetgridSummary, fresh: &NetgridSummary, tolerance: f64) -> u32 {
    let mut warnings = 0;
    // A 6-agent baseline says nothing about a 1000-agent fresh run:
    // relative compares need like-for-like fleets.
    let comparable = base.agents == fresh.agents;
    if !comparable {
        println!(
            "bench_guard: note: fleet sizes differ (baseline {:?}, fresh {:?}); relative compares skipped",
            base.agents, fresh.agents
        );
    }
    let floor = base.workunits_per_sec * (1.0 - tolerance);
    if comparable && fresh.workunits_per_sec < floor {
        warnings += 1;
        eprintln!(
            "bench_guard: WARNING: loopback throughput {:.2} wu/s is below baseline {:.2} - {:.0}% tolerance",
            fresh.workunits_per_sec,
            base.workunits_per_sec,
            tolerance * 100.0
        );
    } else if comparable {
        println!(
            "bench_guard: loopback throughput ok: {:.2} wu/s (baseline {:.2})",
            fresh.workunits_per_sec, base.workunits_per_sec
        );
    }
    let ceiling = base.p99_ms * (1.0 + tolerance);
    if comparable && fresh.p99_ms > ceiling {
        warnings += 1;
        eprintln!(
            "bench_guard: WARNING: p99 request latency {:.2} ms is above baseline {:.2} ms + {:.0}% tolerance",
            fresh.p99_ms,
            base.p99_ms,
            tolerance * 100.0
        );
    } else if comparable {
        println!(
            "bench_guard: p99 request latency ok: {:.2} ms (baseline {:.2} ms)",
            fresh.p99_ms, base.p99_ms
        );
    }
    if !fresh.merged_matches_baseline {
        warnings += 1;
        eprintln!(
            "bench_guard: WARNING: merged wire-level output diverged from the in-process baseline"
        );
    }
    if fresh.timeout_reissues == 0 || fresh.quorum_rejects == 0 {
        warnings += 1;
        eprintln!(
            "bench_guard: WARNING: a fault path went unexercised ({} timeout reissues, {} quorum rejects)",
            fresh.timeout_reissues, fresh.quorum_rejects
        );
    }
    match fresh.journal_overhead_frac {
        Some(frac) if frac > JOURNAL_OVERHEAD_CEILING => {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: write-ahead journal costs {:.1}% throughput (ceiling {:.0}%)",
                frac * 100.0,
                JOURNAL_OVERHEAD_CEILING * 100.0
            );
        }
        Some(frac) => println!(
            "bench_guard: journal overhead ok: {:.1}% (ceiling {:.0}%)",
            frac * 100.0,
            JOURNAL_OVERHEAD_CEILING * 100.0
        ),
        None => println!("bench_guard: note: report has no journal overhead column"),
    }
    if fresh.journal_merged_matches_baseline == Some(false) {
        warnings += 1;
        eprintln!(
            "bench_guard: WARNING: journaled run's merged output diverged from the in-process baseline"
        );
    }
    match fresh.ops_overhead_frac {
        Some(frac) if frac > OPS_OVERHEAD_CEILING => {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: ops endpoint costs {:.1}% throughput (ceiling {:.0}%)",
                frac * 100.0,
                OPS_OVERHEAD_CEILING * 100.0
            );
        }
        Some(frac) => println!(
            "bench_guard: ops endpoint overhead ok: {:.1}% (ceiling {:.0}%)",
            frac * 100.0,
            OPS_OVERHEAD_CEILING * 100.0
        ),
        None => println!("bench_guard: note: report has no ops overhead column"),
    }
    match fresh.ops_scrape_p99_ms {
        Some(p99) if p99 > OPS_SCRAPE_P99_CEILING_MS => {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: /metrics scrape p99 {p99:.2} ms is above the {OPS_SCRAPE_P99_CEILING_MS:.0} ms ceiling"
            );
        }
        Some(p99) => println!(
            "bench_guard: /metrics scrape p99 ok: {p99:.2} ms (ceiling {OPS_SCRAPE_P99_CEILING_MS:.0} ms)"
        ),
        None => {}
    }
    if fresh.ops_merged_matches_baseline == Some(false) {
        warnings += 1;
        eprintln!(
            "bench_guard: WARNING: ops-enabled run's merged output diverged from the in-process baseline"
        );
    }
    match fresh.scale_request_latency_p99_ms {
        Some(p99) if p99 > SCALE_P99_CEILING_MS => {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: scale campaign ({:.0} agents) p99 request latency {p99:.2} ms is above the {SCALE_P99_CEILING_MS:.0} ms ceiling",
                fresh.scale_agents.unwrap_or(0.0)
            );
        }
        Some(p99) => println!(
            "bench_guard: scale campaign ({:.0} agents) p99 request latency ok: {p99:.2} ms (ceiling {SCALE_P99_CEILING_MS:.0} ms)",
            fresh.scale_agents.unwrap_or(0.0)
        ),
        None => {}
    }
    if let (Some(base_wps), Some(fresh_wps), true) = (
        base.scale_workunits_per_sec,
        fresh.scale_workunits_per_sec,
        base.scale_agents == fresh.scale_agents,
    ) {
        let floor = base_wps * (1.0 - tolerance);
        if fresh_wps < floor {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: scale-campaign throughput {fresh_wps:.2} wu/s is below baseline {base_wps:.2} - {:.0}% tolerance",
                tolerance * 100.0
            );
        } else {
            println!(
                "bench_guard: scale-campaign throughput ok: {fresh_wps:.2} wu/s (baseline {base_wps:.2})"
            );
        }
    }
    if fresh.scale_merged_matches_baseline == Some(false) {
        warnings += 1;
        eprintln!(
            "bench_guard: WARNING: scale campaign's merged output diverged from the in-process baseline"
        );
    }
    match fresh.trust_redundancy_reduction_frac {
        Some(frac) if frac < TRUST_REDUNDANCY_REDUCTION_FLOOR => {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: trust-adaptive replication saved only {:.1}% redundancy (floor {:.0}%)",
                frac * 100.0,
                TRUST_REDUNDANCY_REDUCTION_FLOOR * 100.0
            );
        }
        Some(frac) => println!(
            "bench_guard: trust redundancy saving ok: {:.1}% (floor {:.0}%)",
            frac * 100.0,
            TRUST_REDUNDANCY_REDUCTION_FLOOR * 100.0
        ),
        None => println!("bench_guard: note: report has no trust comparison columns"),
    }
    if let (Some(off), Some(on)) = (
        fresh.trust_off_quorum_rejects,
        fresh.trust_on_quorum_rejects,
    ) {
        let ratio = off / on.max(1.0);
        if ratio < TRUST_REJECT_REDUCTION_FLOOR {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: quorum rejections only fell {ratio:.1}x under trust \
                 ({off:.0} -> {on:.0}; floor {TRUST_REJECT_REDUCTION_FLOOR:.0}x)"
            );
        } else {
            println!(
                "bench_guard: trust quorum-rejection reduction ok: {ratio:.1}x ({off:.0} -> {on:.0})"
            );
        }
    }
    if let (Some(off), Some(on)) = (
        fresh.trust_off_wasted_ref_seconds,
        fresh.trust_on_wasted_ref_seconds,
    ) {
        if on > off {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: trust-on run wasted more reference CPU than trust-off ({on:.0} vs {off:.0} ref-s)"
            );
        } else {
            println!("bench_guard: trust wasted-compute ok: {on:.0} ref-s (trust-off {off:.0})");
        }
    }
    if fresh.trust_saboteur_quarantined == Some(false) {
        warnings += 1;
        eprintln!("bench_guard: WARNING: the saboteur escaped quarantine in the trust-on run");
    }
    if fresh.trust_off_merged_matches_baseline == Some(false)
        || fresh.trust_on_merged_matches_baseline == Some(false)
    {
        warnings += 1;
        eprintln!(
            "bench_guard: WARNING: a trust-comparison run's merged output diverged from the in-process baseline"
        );
    }
    match &fresh.shard_rows {
        Some(rows) => {
            for row in rows {
                let label = format!(
                    "{:.0}-shard{} campaign",
                    row.shards,
                    if row.trust { " (trust-on)" } else { "" }
                );
                if !row.merged_matches_single {
                    warnings += 1;
                    eprintln!(
                        "bench_guard: WARNING: {label}: merged per-shard artifacts diverged from the single-server run"
                    );
                }
                if row.redirects > row.requests {
                    warnings += 1;
                    eprintln!(
                        "bench_guard: WARNING: {label}: {:.0} redirects exceed {:.0} requests — steering is looping agents",
                        row.redirects, row.requests
                    );
                }
                if row.throughput_vs_single_frac < SHARD_THROUGHPUT_FLOOR_FRAC {
                    warnings += 1;
                    eprintln!(
                        "bench_guard: WARNING: {label}: aggregate throughput is {:.2}x the single server (floor {SHARD_THROUGHPUT_FLOOR_FRAC:.1}x)",
                        row.throughput_vs_single_frac
                    );
                } else {
                    println!(
                        "bench_guard: {label} ok: {:.2}x single-server throughput, {:.0} redirects over {:.0} requests, merge matches",
                        row.throughput_vs_single_frac, row.redirects, row.requests
                    );
                }
            }
        }
        None => println!("bench_guard: note: report has no sharded-campaign rows"),
    }
    match fresh.campaign_share_error {
        Some(err) if err > CAMPAIGN_SHARE_ERROR_CEILING => {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: multi-campaign fair-share error {err:.3} is above the {CAMPAIGN_SHARE_ERROR_CEILING:.2} ceiling"
            );
        }
        Some(err) => println!(
            "bench_guard: multi-campaign fair-share error ok: {err:.3} (ceiling {CAMPAIGN_SHARE_ERROR_CEILING:.2})"
        ),
        None => println!("bench_guard: note: report has no multi-campaign columns"),
    }
    if let Some(rows) = &fresh.campaign_rows {
        for row in rows {
            if !row.matches_solo_baseline {
                warnings += 1;
                eprintln!(
                    "bench_guard: WARNING: campaign {}: merged artifact diverged from its solo-run baseline",
                    row.name
                );
            } else {
                println!(
                    "bench_guard: campaign {} ok: share {:.0}% -> delivered {:.1}%, artifact matches solo run",
                    row.name,
                    row.share * 100.0,
                    row.delivered_frac * 100.0
                );
            }
        }
    }
    warnings
}

/// The numbers the frame-codec guard compares: nanoseconds per frame
/// for each codec/direction, from `BENCH_codec.json`.
struct CodecSummary {
    json_encode_ns: f64,
    json_decode_ns: f64,
    binary_encode_ns: f64,
    binary_decode_ns: f64,
}

fn codec_summary(report: &Value, path: &str) -> Result<CodecSummary, String> {
    let f = |key: &str| {
        report
            .get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("{path}: missing numeric \"{key}\""))
    };
    Ok(CodecSummary {
        json_encode_ns: f("json_encode_ns")?,
        json_decode_ns: f("json_decode_ns")?,
        binary_encode_ns: f("binary_encode_ns")?,
        binary_decode_ns: f("binary_decode_ns")?,
    })
}

/// Warn-only comparison for a `frame_codec` run: the binary codec must
/// actually beat JSON in both directions (that is its whole reason to
/// exist), and neither codec should regress past the tolerance.
fn guard_codec(base: &CodecSummary, fresh: &CodecSummary, tolerance: f64) -> u32 {
    let mut warnings = 0;
    for (dir, json_ns, binary_ns) in [
        ("encode", fresh.json_encode_ns, fresh.binary_encode_ns),
        ("decode", fresh.json_decode_ns, fresh.binary_decode_ns),
    ] {
        let speedup = json_ns / binary_ns;
        if speedup < 1.0 {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: binary {dir} ({binary_ns:.0} ns) is slower than JSON ({json_ns:.0} ns)"
            );
        } else {
            println!("bench_guard: binary {dir} ok: {speedup:.1}x faster than JSON ({binary_ns:.0} ns vs {json_ns:.0} ns)");
        }
    }
    for (name, base_ns, fresh_ns) in [
        ("json encode", base.json_encode_ns, fresh.json_encode_ns),
        ("json decode", base.json_decode_ns, fresh.json_decode_ns),
        (
            "binary encode",
            base.binary_encode_ns,
            fresh.binary_encode_ns,
        ),
        (
            "binary decode",
            base.binary_decode_ns,
            fresh.binary_decode_ns,
        ),
    ] {
        let ceiling = base_ns * (1.0 + tolerance);
        if fresh_ns > ceiling {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: {name} {fresh_ns:.0} ns/frame is above baseline {base_ns:.0} + {:.0}% tolerance",
                tolerance * 100.0
            );
        }
    }
    warnings
}

/// The report kind, from the `"bench"` field (`sim_scale` reports from
/// before the field existed default to `sim_scale`).
fn report_kind(report: &Value) -> &str {
    report
        .get("bench")
        .and_then(Value::as_str)
        .unwrap_or("sim_scale")
}

fn main() -> ExitCode {
    let mut tolerance = 0.30f64;
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => match args.next().and_then(|s| s.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("bench_guard: --tolerance needs a fraction (e.g. 0.3)");
                    return ExitCode::from(2);
                }
            },
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench_guard <baseline.json> <fresh.json> [--tolerance <fraction>]");
        return ExitCode::from(2);
    };

    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };
    let kind = report_kind(&fresh);
    if report_kind(&baseline) != kind {
        eprintln!(
            "bench_guard: baseline is a {} report but fresh is a {} report",
            report_kind(&baseline),
            kind
        );
        return ExitCode::from(2);
    }
    if kind == "netgrid_e2e" {
        let (base, fresh) = match (
            netgrid_summary(&baseline, baseline_path),
            netgrid_summary(&fresh, fresh_path),
        ) {
            (Ok(b), Ok(f)) => (b, f),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_guard: {e}");
                return ExitCode::from(2);
            }
        };
        let warnings = guard_netgrid(&base, &fresh, tolerance);
        if warnings > 0 {
            eprintln!(
                "bench_guard: {warnings} warning(s) — informational only, not failing the build"
            );
        }
        return ExitCode::SUCCESS;
    }
    if kind == "frame_codec" {
        let (base, fresh) = match (
            codec_summary(&baseline, baseline_path),
            codec_summary(&fresh, fresh_path),
        ) {
            (Ok(b), Ok(f)) => (b, f),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("bench_guard: {e}");
                return ExitCode::from(2);
            }
        };
        let warnings = guard_codec(&base, &fresh, tolerance);
        if warnings > 0 {
            eprintln!(
                "bench_guard: {warnings} warning(s) — informational only, not failing the build"
            );
        }
        return ExitCode::SUCCESS;
    }

    let (base_rows, fresh_rows) = match (
        scenario_rows(&baseline, baseline_path),
        scenario_rows(&fresh, fresh_path),
    ) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };

    let mut warnings = 0u32;
    for &(hosts, fresh_eps, speedup) in &fresh_rows {
        // Compare against the baseline scenario with the same fleet size
        // (a --quick fresh run only covers a subset of the baseline).
        if let Some(&(_, base_eps, _)) = base_rows.iter().find(|&&(h, _, _)| h == hosts) {
            let floor = base_eps * (1.0 - tolerance);
            if fresh_eps < floor {
                warnings += 1;
                eprintln!(
                    "bench_guard: WARNING: {hosts:.0}-host fleet: wheel {fresh_eps:.0} \
                     events/sec is below baseline {base_eps:.0} - {:.0}% tolerance",
                    tolerance * 100.0
                );
            } else {
                println!(
                    "bench_guard: {hosts:.0}-host fleet ok: {fresh_eps:.0} events/sec \
                     (baseline {base_eps:.0})"
                );
            }
        } else {
            println!("bench_guard: {hosts:.0}-host fleet has no baseline entry; skipped");
        }
        if hosts >= BIG_FLEET_HOSTS && speedup < EXPECTED_WHEEL_SPEEDUP {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: {hosts:.0}-host fleet: wheel speedup {speedup:.2}x \
                 fell below the expected {EXPECTED_WHEEL_SPEEDUP:.1}x over the heap"
            );
        }
    }
    if warnings > 0 {
        eprintln!("bench_guard: {warnings} warning(s) — informational only, not failing the build");
    }
    ExitCode::SUCCESS
}

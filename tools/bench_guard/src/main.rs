//! Warn-only perf-regression guard for the event-engine bench.
//!
//! Compares a fresh `sim_scale` run against the committed
//! `BENCH_simscale.json` baseline, scenario by scenario, and prints a
//! warning when the fresh events/sec falls below the baseline by more
//! than the tolerance. CI machines are noisy and heterogeneous, so the
//! guard never fails the build on a perf delta — exit 0 with warnings on
//! stderr; exit 2 only when a report is missing or malformed.
//!
//! ```text
//! bench_guard <baseline.json> <fresh.json> [--tolerance <fraction>]
//! ```
//!
//! It also re-checks the PR's core claim on the *fresh* numbers: the
//! timing wheel should stay ≥ 2x the heap at the 100k-host scenario
//! (again warn-only — `--quick` runs don't include that fleet).

use serde::Value;
use std::process::ExitCode;

/// Minimum wheel-over-heap speedup the big fleets are expected to keep.
const EXPECTED_WHEEL_SPEEDUP: f64 = 2.0;
/// Hosts from which the speedup expectation applies.
const BIG_FLEET_HOSTS: f64 = 100_000.0;

fn load(path: &str) -> Result<Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    serde_json::parse_value(&text).map_err(|e| format!("cannot parse {path}: {e:?}"))
}

/// Flattens a report into `(hosts, wheel events/sec, wheel speedup)` rows.
fn scenario_rows(report: &Value, path: &str) -> Result<Vec<(f64, f64, f64)>, String> {
    let Some(Value::Seq(scenarios)) = report.get("scenarios") else {
        return Err(format!("{path}: no \"scenarios\" array"));
    };
    scenarios
        .iter()
        .map(|s| {
            let hosts = s.get("hosts").and_then(Value::as_f64);
            let eps = s
                .get("wheel")
                .and_then(|w| w.get("events_per_sec"))
                .and_then(Value::as_f64);
            let speedup = s.get("wheel_speedup").and_then(Value::as_f64);
            match (hosts, eps, speedup) {
                (Some(h), Some(e), Some(x)) => Ok((h, e, x)),
                _ => Err(format!("{path}: malformed scenario entry")),
            }
        })
        .collect()
}

fn main() -> ExitCode {
    let mut tolerance = 0.30f64;
    let mut paths = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--tolerance" => match args.next().and_then(|s| s.parse().ok()) {
                Some(t) => tolerance = t,
                None => {
                    eprintln!("bench_guard: --tolerance needs a fraction (e.g. 0.3)");
                    return ExitCode::from(2);
                }
            },
            other => paths.push(other.to_string()),
        }
    }
    let [baseline_path, fresh_path] = paths.as_slice() else {
        eprintln!("usage: bench_guard <baseline.json> <fresh.json> [--tolerance <fraction>]");
        return ExitCode::from(2);
    };

    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };
    let (base_rows, fresh_rows) = match (
        scenario_rows(&baseline, baseline_path),
        scenario_rows(&fresh, fresh_path),
    ) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_guard: {e}");
            return ExitCode::from(2);
        }
    };

    let mut warnings = 0u32;
    for &(hosts, fresh_eps, speedup) in &fresh_rows {
        // Compare against the baseline scenario with the same fleet size
        // (a --quick fresh run only covers a subset of the baseline).
        if let Some(&(_, base_eps, _)) = base_rows.iter().find(|&&(h, _, _)| h == hosts) {
            let floor = base_eps * (1.0 - tolerance);
            if fresh_eps < floor {
                warnings += 1;
                eprintln!(
                    "bench_guard: WARNING: {hosts:.0}-host fleet: wheel {fresh_eps:.0} \
                     events/sec is below baseline {base_eps:.0} - {:.0}% tolerance",
                    tolerance * 100.0
                );
            } else {
                println!(
                    "bench_guard: {hosts:.0}-host fleet ok: {fresh_eps:.0} events/sec \
                     (baseline {base_eps:.0})"
                );
            }
        } else {
            println!("bench_guard: {hosts:.0}-host fleet has no baseline entry; skipped");
        }
        if hosts >= BIG_FLEET_HOSTS && speedup < EXPECTED_WHEEL_SPEEDUP {
            warnings += 1;
            eprintln!(
                "bench_guard: WARNING: {hosts:.0}-host fleet: wheel speedup {speedup:.2}x \
                 fell below the expected {EXPECTED_WHEEL_SPEEDUP:.1}x over the heap"
            );
        }
    }
    if warnings > 0 {
        eprintln!("bench_guard: {warnings} warning(s) — informational only, not failing the build");
    }
    ExitCode::SUCCESS
}

//! Lint for the Prometheus text exposition format, used by CI to vet
//! what `hcmd-server --ops-addr` serves at `/metrics`.
//!
//! ```text
//! promcheck [<file>]        # reads stdin when no file is given
//! ```
//!
//! Checks, per the text-format spec:
//!
//! * metric names match `[a-zA-Z_:][a-zA-Z0-9_:]*`, label names match
//!   `[a-zA-Z_][a-zA-Z0-9_]*`;
//! * `# TYPE` precedes the first sample of its family, at most one
//!   `# TYPE`/`# HELP` per family, and samples of a family are not
//!   interleaved with other families;
//! * every sample value parses as a float (`NaN`/`+Inf`/`-Inf` legal);
//! * histogram `_bucket` series have monotonically non-decreasing
//!   counts over increasing `le`, end with `le="+Inf"`, and the `+Inf`
//!   bucket equals the family's `_count`;
//! * label values are properly quoted with only `\\`, `\"` and `\n`
//!   escapes.
//!
//! Exit 0 when clean, 1 with one line per violation on stderr.

use std::collections::{HashMap, HashSet};
use std::io::Read;
use std::process::ExitCode;

fn valid_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

fn valid_value(s: &str) -> bool {
    matches!(s, "NaN" | "+Inf" | "-Inf" | "Inf") || s.parse::<f64>().is_ok()
}

/// One parsed sample line: name, labels in order, value text.
struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: String,
}

/// Parses `name{k="v",...} value`, reporting malformations as `Err`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (head, value) = match line.find('}') {
        // With a label set, the value follows the closing brace.
        Some(close) => {
            let value = line[close + 1..].trim();
            (&line[..close + 1], value)
        }
        None => match line.split_once(' ') {
            Some((head, value)) => (head, value.trim()),
            None => return Err("sample has no value".into()),
        },
    };
    let (name, labels) = match head.split_once('{') {
        Some((name, rest)) => {
            let body = rest
                .strip_suffix('}')
                .ok_or_else(|| "unterminated label set".to_string())?;
            (name.trim(), parse_labels(body)?)
        }
        None => (head.trim(), Vec::new()),
    };
    if !valid_metric_name(name) {
        return Err(format!("invalid metric name {name:?}"));
    }
    for (k, _) in &labels {
        if !valid_label_name(k) {
            return Err(format!("invalid label name {k:?}"));
        }
    }
    if value.is_empty() {
        return Err("sample has no value".into());
    }
    // A timestamp may trail the value; only the value itself is vetted.
    let value = value.split_whitespace().next().unwrap_or("");
    if !valid_value(value) {
        return Err(format!("unparseable sample value {value:?}"));
    }
    Ok(Sample {
        name: name.to_string(),
        labels,
        value: value.to_string(),
    })
}

/// Parses the interior of a `{...}` label set, enforcing quoting and
/// the three legal escapes.
fn parse_labels(body: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = body.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {rest:?}"))?;
        let key = rest[..eq].trim().to_string();
        rest = &rest[eq + 1..];
        let mut chars = rest.char_indices();
        match chars.next() {
            Some((_, '"')) => {}
            _ => return Err(format!("unquoted value for label {key:?}")),
        }
        let mut value = String::new();
        let mut end = None;
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => {
                    end = Some(i);
                    break;
                }
                '\\' => match chars.next() {
                    Some((_, 'n')) => value.push('\n'),
                    Some((_, e @ ('\\' | '"'))) => value.push(e),
                    other => return Err(format!("bad escape {other:?} in label {key:?}")),
                },
                c => value.push(c),
            }
        }
        let end = end.ok_or_else(|| format!("unterminated value for label {key:?}"))?;
        labels.push((key, value));
        rest = rest[end + 1..].trim_start();
        rest = rest.strip_prefix(',').unwrap_or(rest).trim_start();
    }
    Ok(labels)
}

/// The family a sample belongs to: `_bucket`/`_sum`/`_count` suffixes
/// fold into their histogram's base name when that family is typed as a
/// histogram.
fn family_of<'a>(name: &'a str, types: &HashMap<String, String>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).map(String::as_str) == Some("histogram") {
                return base;
            }
        }
    }
    name
}

fn check(doc: &str) -> Vec<String> {
    let mut errors: Vec<String> = Vec::new();
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashSet<String> = HashSet::new();
    // Families that have already emitted samples; used both for the
    // TYPE-before-sample rule and for the no-interleaving rule.
    let mut sampled: Vec<String> = Vec::new();
    // Histogram accounting: family -> ((le, count) buckets, _count).
    let mut buckets: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
    let mut counts: HashMap<String, f64> = HashMap::new();

    for (idx, line) in doc.lines().enumerate() {
        let n = idx + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match (parts.next(), parts.next(), parts.next()) {
                (Some("TYPE"), Some(name), Some(kind)) => {
                    if !valid_metric_name(name) {
                        errors.push(format!("line {n}: invalid metric name {name:?} in # TYPE"));
                    }
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        errors.push(format!("line {n}: unknown metric type {kind:?}"));
                    }
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        errors.push(format!("line {n}: duplicate # TYPE for {name}"));
                    }
                    if sampled.iter().any(|s| s == name) {
                        errors.push(format!("line {n}: # TYPE for {name} after its samples"));
                    }
                }
                (Some("TYPE"), _, _) => {
                    errors.push(format!("line {n}: malformed # TYPE line"));
                }
                (Some("HELP"), Some(name), _) => {
                    if !helps.insert(name.to_string()) {
                        errors.push(format!("line {n}: duplicate # HELP for {name}"));
                    }
                }
                _ => {} // free-form comment
            }
            continue;
        }
        let sample = match parse_sample(line) {
            Ok(s) => s,
            Err(e) => {
                errors.push(format!("line {n}: {e}"));
                continue;
            }
        };
        let family = family_of(&sample.name, &types).to_string();
        match sampled.last() {
            Some(last) if *last == family => {}
            _ if sampled.contains(&family) => {
                errors.push(format!(
                    "line {n}: samples of {family} interleaved with another family"
                ));
            }
            _ => sampled.push(family.clone()),
        }
        // family_of already folded histogram suffixes onto their typed
        // base name, so an untyped family here really has no # TYPE.
        if !types.contains_key(&family) {
            errors.push(format!(
                "line {n}: sample of {family} has no preceding # TYPE"
            ));
        }
        let value: f64 = match sample.value.as_str() {
            "+Inf" | "Inf" => f64::INFINITY,
            "-Inf" => f64::NEG_INFINITY,
            "NaN" => f64::NAN,
            v => v.parse().unwrap_or(f64::NAN),
        };
        if types.get(&family).map(String::as_str) == Some("histogram") {
            if sample.name.ends_with("_bucket") {
                match sample.labels.iter().find(|(k, _)| k == "le") {
                    Some((_, le)) => {
                        let bound = match le.as_str() {
                            "+Inf" => f64::INFINITY,
                            v => v.parse().unwrap_or(f64::NAN),
                        };
                        if bound.is_nan() {
                            errors.push(format!("line {n}: unparseable le={le:?}"));
                        } else {
                            buckets
                                .entry(family.clone())
                                .or_default()
                                .push((bound, value));
                        }
                    }
                    None => errors.push(format!("line {n}: _bucket sample without an le label")),
                }
            } else if sample.name.ends_with("_count") {
                counts.insert(family.clone(), value);
            }
        }
    }

    for (family, series) in &buckets {
        let mut prev: Option<(f64, f64)> = None;
        for &(le, count) in series {
            if let Some((ple, pcount)) = prev {
                if le <= ple {
                    errors.push(format!(
                        "{family}: le bounds not increasing ({ple} -> {le})"
                    ));
                }
                if count < pcount {
                    errors.push(format!(
                        "{family}: bucket counts decrease ({pcount} at le={ple}, {count} at le={le})"
                    ));
                }
            }
            prev = Some((le, count));
        }
        match prev {
            Some((le, terminal)) if le.is_infinite() => {
                if let Some(&total) = counts.get(family) {
                    if terminal != total {
                        errors.push(format!(
                            "{family}: le=\"+Inf\" bucket {terminal} != _count {total}"
                        ));
                    }
                }
            }
            _ => errors.push(format!(
                "{family}: histogram missing terminal le=\"+Inf\" bucket"
            )),
        }
    }
    errors
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let doc = match args.next() {
        Some(path) if path != "-" => match std::fs::read_to_string(&path) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!("promcheck: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        _ => {
            let mut doc = String::new();
            if let Err(e) = std::io::stdin().read_to_string(&mut doc) {
                eprintln!("promcheck: cannot read stdin: {e}");
                return ExitCode::from(2);
            }
            doc
        }
    };
    let errors = check(&doc);
    if errors.is_empty() {
        let families = doc.lines().filter(|l| l.starts_with("# TYPE ")).count();
        println!("promcheck: ok ({families} metric families)");
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("promcheck: {e}");
        }
        eprintln!("promcheck: {} violation(s)", errors.len());
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::check;

    #[test]
    fn a_clean_document_passes() {
        let doc = "\
# HELP net_reqs Requests.
# TYPE net_reqs counter
net_reqs 42
# TYPE lat histogram
lat_bucket{le=\"1\"} 3
lat_bucket{le=\"7\"} 5
lat_bucket{le=\"+Inf\"} 6
lat_sum 9.5
lat_count 6
# TYPE up gauge
up{host=\"a b\",quoted=\"say \\\"hi\\\"\"} 1
";
        assert_eq!(check(doc), Vec::<String>::new());
    }

    #[test]
    fn violations_are_caught() {
        let cases: &[(&str, &str)] = &[
            ("9bad_name 1\n", "invalid metric name"),
            ("# TYPE m counter\nm nonsense\n", "unparseable sample value"),
            ("m_no_type 1\n", "no preceding # TYPE"),
            (
                "# TYPE a counter\na 1\nb_no_type 2\na 2\n",
                "interleaved",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
                "bucket counts decrease",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_count 5\n",
                "missing terminal",
            ),
            (
                "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_count 5\n",
                "!= _count",
            ),
            ("# TYPE m counter\nm{l=unquoted} 1\n", "unquoted value"),
            ("# TYPE m counter\n# TYPE m counter\nm 1\n", "duplicate # TYPE"),
            ("# TYPE m counter\nm 1\n# TYPE m gauge\n", "after its samples"),
        ];
        for (doc, expect) in cases {
            let errors = check(doc);
            assert!(
                errors.iter().any(|e| e.contains(expect)),
                "expected {expect:?} for {doc:?}, got {errors:?}"
            );
        }
    }

    #[test]
    fn the_servers_own_exposition_style_passes() {
        // Mirrors what render_metrics emits: dotted telemetry names are
        // sanitized, hcmd_* families carry labels, histograms cumulate.
        let doc = "\
# HELP hcmd_wu_states Workunits by scheduler state.
# TYPE hcmd_wu_states gauge
hcmd_wu_states{state=\"total\"} 33
hcmd_wu_states{state=\"done\"} 33
# HELP hcmd_virtual_full_time_processors VFTP.
# TYPE hcmd_virtual_full_time_processors gauge
hcmd_virtual_full_time_processors 2.125
";
        assert_eq!(check(doc), Vec::<String>::new());
    }
}

//! Scheduler parity: the simulator frontend and the wire frontend make
//! identical issue/validate decisions.
//!
//! PR 4 extracted `gridsim::SchedulerCore` so the in-process simulator
//! and the live TCP grid share one scheduling brain. This test is the
//! guarantee that the extraction means something: one scripted event
//! history — fetches, good results, a bounds-invalid result, a deadline
//! expiry, then a drain to completion — is replayed against
//!
//! * the **simulator frontend**: a bare `SchedulerCore` fed boolean
//!   error flags, exactly as `VolunteerGridSim` drives it, and
//! * the **wire frontend**: `netgrid::GridState` fed real
//!   `DockingOutput` payloads, where "erroneous" is a §5.2
//!   bounds-check failure on real bytes,
//!
//! and the two decision logs (workunit issue order, completion and
//! error outcomes, reissue bookkeeping) must be identical, down to the
//! final `ServerStats`.

use gridsim::server::{SchedulerCore, ServerConfig, ServerStats};
use gridsim::SimTime;
use netgrid::trust::spot_selected;
use netgrid::{
    CampaignParams, GridState, NetCampaign, ServerFaults, TrustConfig, Verdict, WorkReply,
};

/// The common frontend surface the script drives.
trait Frontend {
    /// Requests work; logs `issue wu=N` or `nowork`. Returns the index
    /// of the new assignment in the frontend's own list.
    fn fetch(&mut self, now: f64) -> Option<usize>;
    /// Reports assignment `idx`; `good` selects an honest result vs. an
    /// erroneous one (boolean flag / bounds-invalid payload).
    fn report(&mut self, now: f64, idx: usize, good: bool);
    /// Expires outstanding past-deadline replicas; logs the count.
    fn sweep(&mut self, now: f64);
    fn is_complete(&self) -> bool;
    fn log(&self) -> &[String];
    fn stats(&self) -> ServerStats;
}

/// The simulator's view: boolean error flags, explicit timeout calls —
/// the same calls `VolunteerGridSim` makes.
struct SimFrontend {
    core: SchedulerCore,
    /// (replica, workunit, deadline, reported)
    assignments: Vec<(gridsim::server::ReplicaId, u32, f64, bool)>,
    log: Vec<String>,
}

impl SimFrontend {
    fn new(campaign: &NetCampaign, config: ServerConfig) -> Self {
        Self {
            core: SchedulerCore::new(campaign.catalog(), config),
            assignments: Vec::new(),
            log: Vec::new(),
        }
    }
}

impl Frontend for SimFrontend {
    fn fetch(&mut self, now: f64) -> Option<usize> {
        match self.core.fetch_work(SimTime::new(now)) {
            Some(a) => {
                self.log.push(format!("issue wu={}", a.workunit));
                self.assignments.push((
                    a.replica,
                    a.workunit,
                    now + self.core.deadline_seconds(),
                    false,
                ));
                Some(self.assignments.len() - 1)
            }
            None => {
                self.log.push("nowork".into());
                None
            }
        }
    }

    fn report(&mut self, now: f64, idx: usize, good: bool) {
        let (replica, wu, _, ref mut reported) = self.assignments[idx];
        *reported = true;
        let outcome = self.core.report_result(SimTime::new(now), replica, !good);
        self.log.push(format!(
            "report wu={wu} completed={} erroneous={}",
            outcome.completed_workunit, outcome.erroneous
        ));
    }

    fn sweep(&mut self, now: f64) {
        // The simulator schedules one Timeout event per replica; sweep
        // equivalence is "every outstanding past-deadline replica gets
        // its handle_timeout call".
        let mut expired = 0;
        for i in 0..self.assignments.len() {
            let (replica, _, deadline, reported) = self.assignments[i];
            if !reported && now >= deadline {
                self.core.handle_timeout(replica);
                self.assignments[i].3 = true; // expire once, like the sim's single Timeout event
                expired += 1;
            }
        }
        self.log.push(format!("sweep expired={expired}"));
    }

    fn is_complete(&self) -> bool {
        self.core.is_campaign_complete()
    }

    fn log(&self) -> &[String] {
        &self.log
    }

    fn stats(&self) -> ServerStats {
        self.core.stats
    }
}

/// The wire's view: real payloads through `GridState`. An "erroneous"
/// result is an honest payload with one energy blown out of the §5.2
/// bounds, so the error flag is *derived from bytes*, not asserted.
struct WireFrontend {
    campaign: NetCampaign,
    state: GridState,
    /// (replica, workunit)
    assignments: Vec<(gridsim::server::ReplicaId, u32)>,
    log: Vec<String>,
}

impl WireFrontend {
    fn new(config: ServerConfig) -> Self {
        let campaign = NetCampaign::build(CampaignParams::tiny());
        let state = GridState::new(&campaign, config, ServerFaults::default());
        Self {
            campaign,
            state,
            assignments: Vec::new(),
            log: Vec::new(),
        }
    }
}

impl Frontend for WireFrontend {
    fn fetch(&mut self, now: f64) -> Option<usize> {
        match self.state.fetch(SimTime::new(now), 1) {
            WorkReply::Assigned(a) => {
                self.log.push(format!("issue wu={}", a.workunit));
                self.assignments.push((a.replica, a.workunit));
                Some(self.assignments.len() - 1)
            }
            WorkReply::Backoff { .. } => {
                self.log.push("nowork".into());
                None
            }
        }
    }

    fn report(&mut self, now: f64, idx: usize, good: bool) {
        let (replica, wu) = self.assignments[idx];
        let mut output = self.campaign.compute(self.campaign.spec(wu));
        if !good {
            output.rows[0].elj = f64::INFINITY;
        }
        let d = self
            .state
            .report(SimTime::new(now), &self.campaign, replica, wu, output);
        let erroneous = matches!(d.verdict, Verdict::BoundsRejected | Verdict::QuorumRejected);
        self.log.push(format!(
            "report wu={wu} completed={} erroneous={erroneous}",
            d.completed_workunit
        ));
    }

    fn sweep(&mut self, now: f64) {
        let expired = self.state.sweep(SimTime::new(now));
        self.log.push(format!("sweep expired={expired}"));
    }

    fn is_complete(&self) -> bool {
        self.state.is_campaign_complete()
    }

    fn log(&self) -> &[String] {
        &self.log
    }

    fn stats(&self) -> ServerStats {
        self.state.server_stats()
    }
}

/// The scripted history, plus a drain loop to campaign completion.
fn run_script(f: &mut impl Frontend) {
    // Three fetches at t=0: wu0's initial, wu0's quorum sibling, wu1's
    // initial (leaving wu1's sibling queued).
    let i0 = f.fetch(0.0).expect("work available");
    let i1 = f.fetch(0.0).expect("work available");
    let i2 = f.fetch(0.0).expect("work available");
    // wu0's pair reports honestly and validates.
    f.report(1.0, i0, true);
    f.report(2.0, i1, true);
    // wu1's sibling is fetched late and reports an erroneous result —
    // an error reissue.
    let i3 = f.fetch(5.0).expect("work available");
    f.report(6.0, i3, false);
    // wu1's first replica (i2, issued t=0, 10 s deadline) never
    // reports; the sweep at t=11 expires it — a timeout reissue.
    f.sweep(11.0);
    let _ = i2;
    // Drain: fetch and immediately report honestly until complete.
    let mut now = 12.0;
    while !f.is_complete() {
        now += 0.5;
        while let Some(i) = f.fetch(now) {
            f.report(now, i, true);
        }
    }
}

#[test]
fn simulator_and_wire_frontends_decide_identically() {
    let config = ServerConfig {
        deadline_seconds: 10.0,
        ..ServerConfig::default()
    };
    let campaign = NetCampaign::build(CampaignParams::tiny());

    let mut sim = SimFrontend::new(&campaign, config);
    let mut wire = WireFrontend::new(config);
    run_script(&mut sim);
    run_script(&mut wire);

    assert_eq!(
        sim.log(),
        wire.log(),
        "the two frontends diverged in their issue/validate decisions"
    );
    assert_eq!(sim.stats(), wire.stats(), "final ServerStats diverged");
    assert!(sim.is_complete() && wire.is_complete());

    // Both exercised the interesting paths, not just the happy drain.
    let stats = sim.stats();
    assert_eq!(stats.errors_received, 1, "one bounds-invalid result");
    assert_eq!(stats.error_reissues, 1);
    assert_eq!(stats.timeout_reissues, 1, "one expired replica");

    // And the wire frontend's accepted artifact is the in-process
    // baseline, byte for byte.
    let outputs = wire.state.accepted_outputs().expect("campaign complete");
    assert_eq!(
        serde_json::to_string(&outputs).unwrap(),
        serde_json::to_string(&campaign.baseline_outputs()).unwrap(),
    );
}

/// Property: spot-check selection is a pure function of (seed,
/// workunit, rate) — stable across calls, empty at rate 0, total at
/// rate 1, and monotone in rate (raising the rate never deselects a
/// workunit, because selection thresholds one fixed hash).
#[test]
fn spot_selection_is_a_pure_function_of_seed_and_workunit() {
    for seed in [0u64, 7, 0x5d0c_beef, u64::MAX] {
        let picks: Vec<bool> = (0..5_000).map(|wu| spot_selected(seed, wu, 0.25)).collect();
        let again: Vec<bool> = (0..5_000).map(|wu| spot_selected(seed, wu, 0.25)).collect();
        assert_eq!(picks, again, "selection must be deterministic");
        assert!((0..5_000).all(|wu| !spot_selected(seed, wu, 0.0)));
        assert!((0..5_000).all(|wu| spot_selected(seed, wu, 1.0)));
        for wu in 0..5_000 {
            if spot_selected(seed, wu, 0.25) {
                assert!(
                    spot_selected(seed, wu, 0.5),
                    "raising the rate deselected wu {wu} under seed {seed}"
                );
            }
        }
        let hits = picks.iter().filter(|&&p| p).count();
        assert!(
            (800..1700).contains(&hits),
            "rate 0.25 over 5000 workunits selected {hits}"
        );
    }
    // Different seeds sample different subsets.
    let a: Vec<bool> = (0..5_000).map(|wu| spot_selected(1, wu, 0.25)).collect();
    let b: Vec<bool> = (0..5_000).map(|wu| spot_selected(2, wu, 0.25)).collect();
    assert_ne!(a, b, "the seed must actually steer the draw");
}

/// Property: under the trust policy, a scripted campaign history —
/// honest agents, one saboteur, interleaved fetch/report/sweep — is
/// fully deterministic (two runs produce identical decision logs,
/// seeded spot checks included), and the replication level demanded of
/// any workunit never leaves `[1, quorum max]`: trusted singles floor
/// at one result, forced re-replication ceilings at the configured
/// quorum of two.
#[test]
fn trust_scripted_history_is_deterministic_with_bounded_replication() {
    const QUORUM_MAX: u16 = 2;
    let run = || -> (Vec<String>, GridState) {
        let campaign = NetCampaign::build(CampaignParams::tiny());
        let config = ServerConfig {
            deadline_seconds: 10.0,
            ..ServerConfig::default()
        };
        let faults = ServerFaults {
            trust: TrustConfig {
                spot_check_rate: 0.5,
                ..TrustConfig::on()
            },
            ..ServerFaults::default()
        };
        let mut state = GridState::new(&campaign, config, faults);
        let mut log = Vec::new();
        // Deterministic script mixer (an LCG, not the std RNG, so the
        // history is identical on every run of this test binary).
        let mut lcg: u64 = 0x2545_f491_4f6c_dd1d;
        let mut draw = |m: u64| {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (lcg >> 33) % m
        };
        let mut now = 0.0f64;
        let mut corruptions = 0u32;
        for step in 0..10_000 {
            if state.is_campaign_complete() {
                break;
            }
            now += 0.25;
            // Agent 9 is the saboteur: in-bounds corruption every time.
            let agent = [1u64, 2, 3, 9][draw(4) as usize];
            if draw(10) == 0 {
                let expired = state.sweep(SimTime::new(now));
                log.push(format!("sweep expired={expired}"));
                continue;
            }
            match state.fetch(SimTime::new(now), agent) {
                WorkReply::Assigned(a) => {
                    let needed = state.replication_needed(SimTime::new(now), a.workunit);
                    assert!(
                        (1..=QUORUM_MAX).contains(&needed),
                        "step {step}: wu {} demands {needed} results",
                        a.workunit
                    );
                    let mut out = campaign.compute(campaign.spec(a.workunit));
                    if agent == 9 {
                        // Salted like FaultDice: two corruptions never
                        // byte-match, so the saboteur cannot validate
                        // its own garbage by holding both pair halves.
                        corruptions += 1;
                        out.rows[0].eelec += 1e-9 * f64::from(corruptions);
                    }
                    let d = state.report(
                        SimTime::new(now + 0.1),
                        &campaign,
                        a.replica,
                        a.workunit,
                        out,
                    );
                    log.push(format!(
                        "agent={agent} wu={} verdict={:?} complete={}",
                        a.workunit, d.verdict, d.completed_workunit
                    ));
                }
                WorkReply::Backoff { .. } => log.push(format!("agent={agent} backoff")),
            }
        }
        (log, state)
    };

    let (log_a, state_a) = run();
    let (log_b, state_b) = run();
    assert_eq!(log_a, log_b, "identical scripts must replay identically");
    assert_eq!(state_a.server_stats(), state_b.server_stats());
    assert!(
        state_a.is_campaign_complete(),
        "script budget too small to finish the campaign"
    );
    // The interesting machinery actually ran: someone graduated to
    // singles and was audited for it.
    assert!(
        state_a.net_stats.spot_checks_passed > 0,
        "no spot check ever fired: {:?}",
        state_a.net_stats
    );
    assert_eq!(
        serde_json::to_string(&state_a.accepted_outputs().unwrap()).unwrap(),
        serde_json::to_string(&NetCampaign::build(CampaignParams::tiny()).baseline_outputs())
            .unwrap(),
        "trust must not change the merged artifact"
    );
}

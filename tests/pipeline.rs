//! End-to-end integration: docking kernel → workunit packaging → result
//! files → the three §5.2 checks → merge.
//!
//! This is the scientific pipeline of the paper on a miniature couple,
//! with the real energy kernel (no cost-model shortcuts).

use maxdo::{
    DockingEngine, EnergyParams, LibraryConfig, MinimizeParams, ProteinId, ProteinLibrary,
};
use validation::checks::{check_batch, CheckFailure, ValueRanges};
use validation::format::{parse_result_file, result_file_from_output, write_result_file};
use validation::merge_couple_files;

fn tiny_engine(library: &ProteinLibrary) -> DockingEngine<'_> {
    DockingEngine::new(
        library.protein(ProteinId(0)),
        library.protein(ProteinId(1)),
        5, // keep the kernel work tiny: 5 positions × 21 couples × 10 γ
        EnergyParams::default(),
        MinimizeParams {
            max_iterations: 6,
            ..Default::default()
        },
    )
}

#[test]
fn dock_validate_merge_round_trip() {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(2), 99);
    let engine = tiny_engine(&library);
    let (rid, lid) = (ProteinId(0), ProteinId(1));

    // Package into workunits of 2 positions.
    let mut files = Vec::new();
    let mut isep = 1;
    while isep <= 5 {
        let end = (isep + 1).min(5);
        let out = engine.dock_range(isep, end);
        // Serialize to text and back — the files travel through WCG's
        // storage server as text.
        let file = result_file_from_output(rid, lid, isep, end, &out);
        let parsed = parse_result_file(&write_result_file(&file)).expect("round trip");
        files.push(parsed);
        isep = end + 1;
    }
    assert_eq!(files.len(), 3);

    // §5.2 checks all pass.
    let failures = check_batch(rid, lid, &files, 3, &ValueRanges::default());
    assert!(failures.is_empty(), "{failures:?}");

    // Merge into the couple's result file.
    let merged = merge_couple_files(files, 5).expect("contiguous chunks");
    assert_eq!(merged.rows.len(), 5 * 21);
    // Canonical order survives the pipeline.
    for (i, row) in merged.rows.iter().enumerate() {
        assert_eq!(row.isep as usize, i / 21 + 1);
        assert_eq!(row.irot as usize, i % 21 + 1);
    }
}

#[test]
fn corrupted_results_are_caught_by_the_checks() {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(2), 99);
    let engine = tiny_engine(&library);
    let (rid, lid) = (ProteinId(0), ProteinId(1));
    let out = engine.dock_range(1, 2);
    let mut file = result_file_from_output(rid, lid, 1, 2, &out);

    // A volunteer machine with flaky memory flips an energy to garbage —
    // exactly what the value-range check exists to reject (§5.1: "there
    // are some specific boundary conditions on each value").
    file.rows[5].elj = -8.0e9;
    let failures = check_batch(
        rid,
        lid,
        std::slice::from_ref(&file),
        1,
        &ValueRanges::default(),
    );
    assert!(
        failures
            .iter()
            .any(|f| matches!(f, CheckFailure::ValueRange { field: "elj", .. })),
        "{failures:?}"
    );
}

#[test]
fn missing_workunit_blocks_the_merge() {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(2), 99);
    let engine = tiny_engine(&library);
    let (rid, lid) = (ProteinId(0), ProteinId(1));
    // Workunits for positions 1..=2 and 5..=5; 3..=4 never arrives.
    let a = result_file_from_output(rid, lid, 1, 2, &engine.dock_range(1, 2));
    let b = result_file_from_output(rid, lid, 5, 5, &engine.dock_range(5, 5));
    let err = merge_couple_files(vec![a, b], 5).unwrap_err();
    assert_eq!(err, validation::MergeError::Gap { after: 2, next: 5 });
}

#[test]
fn checkpointed_and_straight_runs_agree_through_the_pipeline() {
    let library = ProteinLibrary::generate(LibraryConfig::tiny(2), 5);
    let engine = tiny_engine(&library);
    // Straight run.
    let straight = engine.dock_range(1, 3);
    // Interrupted run (§4.3): stop after each position, serialize the
    // checkpoint, resume from text.
    let mut cp = maxdo::DockingCheckpoint::new(1, 3);
    while !cp.is_complete() {
        let out = engine.dock_position(cp.next_isep);
        cp.commit_position(out);
        cp = maxdo::DockingCheckpoint::from_text(&cp.to_text()).expect("valid checkpoint");
    }
    assert_eq!(cp.rows.len(), straight.rows.len());
    for (a, b) in cp.rows.iter().zip(&straight.rows) {
        assert_eq!((a.isep, a.irot), (b.isep, b.irot));
        assert!(
            (a.etot() - b.etot()).abs() < 1e-5,
            "{} vs {}",
            a.etot(),
            b.etot()
        );
    }
}

//! Wire-level fault injection, end to end over loopback TCP.
//!
//! These tests run the real campaign — live `hcmd-netgrid` server, real
//! agents, real maxdo docking — with volunteers that misbehave on
//! purpose, and assert the server's §5.1 failure handling: a vanished
//! agent's replica is reissued after its deadline, corrupted results
//! are caught by quorum comparison, and the campaign still completes
//! with a merged output byte-identical to the in-process baseline.

use netgrid::{
    run_agent, AgentConfig, CampaignParams, FaultProfile, Message, NetCampaign, NetRunReport,
    NetServer, NetServerConfig,
};
use std::thread;
use std::time::Duration;

/// Binds a loopback server for a tiny campaign and returns the resolved
/// address plus the thread computing `run()`.
fn spawn_server(
    deadline_seconds: f64,
) -> (String, thread::JoinHandle<std::io::Result<NetRunReport>>) {
    let config = NetServerConfig {
        sweep_ms: 25,
        ..NetServerConfig::loopback(deadline_seconds)
    };
    let server = NetServer::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, thread::spawn(move || server.run()))
}

fn baseline_json() -> String {
    let baseline = NetCampaign::build(CampaignParams::tiny()).baseline_outputs();
    serde_json::to_string(&baseline).unwrap()
}

#[test]
fn killed_agent_times_out_and_campaign_still_completes() {
    let (addr, server) = spawn_server(1.5);

    // The victim takes one assignment and vanishes without reporting —
    // the volunteer's PC switched off mid-workunit.
    let victim = {
        let addr = addr.clone();
        thread::spawn(move || {
            run_agent(AgentConfig {
                die_after: Some(1),
                ..AgentConfig::new(addr, 100)
            })
        })
    };
    victim.join().unwrap().expect("victim ran");

    // Two honest volunteers finish the campaign, including the replica
    // the victim abandoned (reissued once its deadline expires).
    let honest: Vec<_> = (1..=2u64)
        .map(|agent| {
            let addr = addr.clone();
            thread::spawn(move || run_agent(AgentConfig::new(addr, agent)))
        })
        .collect();
    let reports: Vec<_> = honest
        .into_iter()
        .map(|h| h.join().unwrap().expect("honest agent ran"))
        .collect();
    // The agent that reports the final validating result is always told
    // `campaign_complete` in its ack. The other may legitimately miss
    // the notice if it was computing a redundant replica when the
    // campaign ended and the server was gone by the time it reported.
    assert!(
        reports.iter().any(|r| r.saw_completion),
        "at least one agent must see the campaign end: {reports:?}"
    );

    let report = server.join().unwrap().expect("server ran");
    assert!(
        report.net_stats.deadline_expiries >= 1,
        "the abandoned replica must expire: {:?}",
        report.net_stats
    );
    assert!(
        report.server_stats.timeout_reissues >= 1,
        "expiry must become a timeout reissue: {:?}",
        report.server_stats
    );
    assert_eq!(report.outputs.len(), report.workunits);
    assert_eq!(
        serde_json::to_string(&report.outputs).unwrap(),
        baseline_json(),
        "merged wire-level output must be byte-identical to the in-process baseline"
    );
}

#[test]
fn corrupted_results_are_quorum_rejected_and_the_honest_output_wins() {
    let (addr, server) = spawn_server(8.0);

    // One saboteur corrupts every result; three honest agents (one
    // multicore) outvote it on every workunit.
    let saboteur = {
        let addr = addr.clone();
        thread::spawn(move || {
            run_agent(AgentConfig {
                profile: FaultProfile {
                    disconnect: 0.0,
                    stall: 0.0,
                    corrupt: 1.0,
                },
                seed: 5,
                ..AgentConfig::new(addr, 666)
            })
        })
    };
    // Give the saboteur first crack at the queue so at least one of its
    // corrupted results is in before the honest agents finish.
    thread::sleep(Duration::from_millis(50));
    let honest: Vec<_> = (1..=3u64)
        .map(|agent| {
            let addr = addr.clone();
            thread::spawn(move || {
                run_agent(AgentConfig {
                    threads: if agent == 1 { 2 } else { 1 },
                    ..AgentConfig::new(addr, agent)
                })
            })
        })
        .collect();
    for h in honest {
        h.join().unwrap().expect("honest agent ran");
    }
    let _ = saboteur.join().unwrap();

    let report = server.join().unwrap().expect("server ran");
    assert!(
        report.net_stats.quorum_rejected >= 1,
        "a corrupted result must disagree with an honest candidate: {:?}",
        report.net_stats
    );
    assert!(
        report.server_stats.error_reissues >= 1,
        "each quorum rejection reissues the workunit: {:?}",
        report.server_stats
    );
    assert_eq!(
        serde_json::to_string(&report.outputs).unwrap(),
        baseline_json(),
        "corruption must never reach the accepted artifact"
    );
}

/// Regression: a connection turned away with `Busy` used to be counted
/// in `NetRunReport.connections` *and* `rejected_connections`, so the
/// two columns double-counted the same TCP accept. The counts must be
/// disjoint: accepted connections on one side, rejections on the other.
#[test]
fn busy_rejections_are_not_double_counted_as_connections() {
    let mut config = NetServerConfig {
        sweep_ms: 25,
        ..NetServerConfig::loopback(8.0)
    };
    // The event-loop server clears the stock tiny campaign in tens of
    // milliseconds — faster than the probe below can land — so give
    // every workunit enough docking iterations that the solo volunteer
    // is still mid-campaign when the probe arrives.
    config.campaign = CampaignParams {
        max_iterations: 400,
        ..CampaignParams::tiny()
    };
    let params = config.campaign;
    // One slot: the single honest volunteer holds it for the whole
    // campaign, so any probe while it runs draws `Busy`.
    config.faults.max_connections = 1;
    let server = NetServer::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let server = thread::spawn(move || server.run());

    let agent = {
        let addr = addr.clone();
        thread::spawn(move || run_agent(AgentConfig::new(addr, 1)))
    };

    // Probe the full server with a raw socket and read the brush-off.
    thread::sleep(Duration::from_millis(250));
    let mut probe = std::net::TcpStream::connect(&addr).expect("probe connects");
    match netgrid::protocol::read_message(&mut probe) {
        Ok(Some(Message::Busy { retry_after_ms })) => {
            assert!(retry_after_ms > 0, "Busy must carry a retry hint")
        }
        other => panic!("expected Busy at the connection limit, got {other:?}"),
    }
    drop(probe);

    agent.join().unwrap().expect("honest agent ran");
    let report = server.join().unwrap().expect("server ran");
    assert_eq!(
        report.connections, 1,
        "only the agent's session is an accepted connection: {report:?}"
    );
    assert_eq!(
        report.rejected_connections, 1,
        "the probe is a rejection, nothing else: {report:?}"
    );
    let baseline = NetCampaign::build(params).baseline_outputs();
    assert_eq!(
        serde_json::to_string(&report.outputs).unwrap(),
        serde_json::to_string(&baseline).unwrap(),
        "a rejected probe must not perturb the artifact"
    );
}

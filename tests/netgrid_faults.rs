//! Wire-level fault injection, end to end over loopback TCP.
//!
//! These tests run the real campaign — live `hcmd-netgrid` server, real
//! agents, real maxdo docking — with volunteers that misbehave on
//! purpose, and assert the server's §5.1 failure handling: a vanished
//! agent's replica is reissued after its deadline, corrupted results
//! are caught by quorum comparison, and the campaign still completes
//! with a merged output byte-identical to the in-process baseline.

use netgrid::{
    run_agent, AgentConfig, CampaignParams, FaultProfile, NetCampaign, NetRunReport, NetServer,
    NetServerConfig,
};
use std::thread;
use std::time::Duration;

/// Binds a loopback server for a tiny campaign and returns the resolved
/// address plus the thread computing `run()`.
fn spawn_server(
    deadline_seconds: f64,
) -> (String, thread::JoinHandle<std::io::Result<NetRunReport>>) {
    let config = NetServerConfig {
        sweep_ms: 25,
        ..NetServerConfig::loopback(deadline_seconds)
    };
    let server = NetServer::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    (addr, thread::spawn(move || server.run()))
}

fn baseline_json() -> String {
    let baseline = NetCampaign::build(CampaignParams::tiny()).baseline_outputs();
    serde_json::to_string(&baseline).unwrap()
}

#[test]
fn killed_agent_times_out_and_campaign_still_completes() {
    let (addr, server) = spawn_server(1.5);

    // The victim takes one assignment and vanishes without reporting —
    // the volunteer's PC switched off mid-workunit.
    let victim = {
        let addr = addr.clone();
        thread::spawn(move || {
            run_agent(AgentConfig {
                die_after: Some(1),
                ..AgentConfig::new(addr, 100)
            })
        })
    };
    victim.join().unwrap().expect("victim ran");

    // Two honest volunteers finish the campaign, including the replica
    // the victim abandoned (reissued once its deadline expires).
    let honest: Vec<_> = (1..=2u64)
        .map(|agent| {
            let addr = addr.clone();
            thread::spawn(move || run_agent(AgentConfig::new(addr, agent)))
        })
        .collect();
    for h in honest {
        let report = h.join().unwrap().expect("honest agent ran");
        assert!(report.saw_completion, "agent should see the campaign end");
    }

    let report = server.join().unwrap().expect("server ran");
    assert!(
        report.net_stats.deadline_expiries >= 1,
        "the abandoned replica must expire: {:?}",
        report.net_stats
    );
    assert!(
        report.server_stats.timeout_reissues >= 1,
        "expiry must become a timeout reissue: {:?}",
        report.server_stats
    );
    assert_eq!(report.outputs.len(), report.workunits);
    assert_eq!(
        serde_json::to_string(&report.outputs).unwrap(),
        baseline_json(),
        "merged wire-level output must be byte-identical to the in-process baseline"
    );
}

#[test]
fn corrupted_results_are_quorum_rejected_and_the_honest_output_wins() {
    let (addr, server) = spawn_server(8.0);

    // One saboteur corrupts every result; three honest agents (one
    // multicore) outvote it on every workunit.
    let saboteur = {
        let addr = addr.clone();
        thread::spawn(move || {
            run_agent(AgentConfig {
                profile: FaultProfile {
                    disconnect: 0.0,
                    stall: 0.0,
                    corrupt: 1.0,
                },
                seed: 5,
                ..AgentConfig::new(addr, 666)
            })
        })
    };
    // Give the saboteur first crack at the queue so at least one of its
    // corrupted results is in before the honest agents finish.
    thread::sleep(Duration::from_millis(50));
    let honest: Vec<_> = (1..=3u64)
        .map(|agent| {
            let addr = addr.clone();
            thread::spawn(move || {
                run_agent(AgentConfig {
                    threads: if agent == 1 { 2 } else { 1 },
                    ..AgentConfig::new(addr, agent)
                })
            })
        })
        .collect();
    for h in honest {
        h.join().unwrap().expect("honest agent ran");
    }
    let _ = saboteur.join().unwrap();

    let report = server.join().unwrap().expect("server ran");
    assert!(
        report.net_stats.quorum_rejected >= 1,
        "a corrupted result must disagree with an honest candidate: {:?}",
        report.net_stats
    );
    assert!(
        report.server_stats.error_reissues >= 1,
        "each quorum rejection reissues the workunit: {:?}",
        report.server_stats
    );
    assert_eq!(
        serde_json::to_string(&report.outputs).unwrap(),
        baseline_json(),
        "corruption must never reach the accepted artifact"
    );
}

//! Byte-identity of campaign traces across event engines.
//!
//! The timing wheel replaced the `BinaryHeap` inside the simulator's
//! event queue; both pop in strictly increasing unique `(at, seq)`
//! order, so the swap must be invisible — not approximately, but to the
//! byte. These tests run fixed-seed campaigns through both engines (and
//! through both host-execution modes) and compare the serialized JSON
//! of the full [`CampaignTrace`].

use gridsim::{
    EventQueue, HeapQueue, MembershipModel, ProjectPhases, Scheduler, SeasonalityModel, SharePhase,
    SimEvent, VolunteerGridConfig, VolunteerGridSim,
};
use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
use timemodel::CostMatrix;
use workunit::CampaignPackage;

/// Serializes to JSON bytes — the strictest equality we can ask for.
fn bytes<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

/// A small fixed-population campaign trace on the given engine.
fn campaign<S: Scheduler<SimEvent>>(seed: u64, detailed: bool, feeder: bool) -> String {
    let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 7);
    let matrix = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.3));
    let pkg = CampaignPackage::new(&lib, &matrix, 4.0 * 3600.0);
    let mut config = VolunteerGridConfig::hcmd_phase1(1, seed);
    config.membership = MembershipModel {
        reference_vftp: 40.0,
        reference_day: 1,
        growth_exponent: 0.0,
        seasonality: SeasonalityModel::flat(),
        mean_accounted_fraction: 0.625,
    };
    config.phases = ProjectPhases::new(vec![SharePhase {
        start_day: 0,
        share_start: 1.0,
        share_end: 1.0,
        days: 365,
        name: "full",
    }]);
    config.membership_start_day = 0;
    config.snapshot_days = vec![1, 50];
    config.detailed_sessions = detailed;
    if feeder {
        config.server.feeder = Some(gridsim::FeederConfig::default());
    }
    bytes(&VolunteerGridSim::<S>::with_scheduler(&pkg, config).run())
}

#[test]
fn analytic_campaign_trace_is_engine_independent() {
    for seed in [42, 7, 2007] {
        let wheel = campaign::<EventQueue<SimEvent>>(seed, false, false);
        let heap = campaign::<HeapQueue<SimEvent>>(seed, false, false);
        assert_eq!(wheel, heap, "seed = {seed}");
    }
}

#[test]
fn detailed_sessions_trace_is_engine_independent() {
    let wheel = campaign::<EventQueue<SimEvent>>(99, true, false);
    let heap = campaign::<HeapQueue<SimEvent>>(99, true, false);
    assert_eq!(wheel, heap);
}

#[test]
fn feeder_campaign_trace_is_engine_independent() {
    let wheel = campaign::<EventQueue<SimEvent>>(42, false, true);
    let heap = campaign::<HeapQueue<SimEvent>>(42, false, true);
    assert_eq!(wheel, heap);
}

#[test]
fn default_engine_is_the_timing_wheel() {
    // `VolunteerGridSim::new` must run on the wheel: same bytes as the
    // explicit wheel instantiation.
    let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 7);
    let matrix = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.3));
    let pkg = CampaignPackage::new(&lib, &matrix, 4.0 * 3600.0);
    let mut config = VolunteerGridConfig::hcmd_phase1(1, 42);
    config.membership = MembershipModel {
        reference_vftp: 40.0,
        reference_day: 1,
        growth_exponent: 0.0,
        seasonality: SeasonalityModel::flat(),
        mean_accounted_fraction: 0.625,
    };
    config.phases = ProjectPhases::new(vec![SharePhase {
        start_day: 0,
        share_start: 1.0,
        share_end: 1.0,
        days: 365,
        name: "full",
    }]);
    config.membership_start_day = 0;
    config.snapshot_days = vec![1, 50];
    let via_new = bytes(&VolunteerGridSim::new(&pkg, config.clone()).run());
    let via_wheel =
        bytes(&VolunteerGridSim::<EventQueue<SimEvent>>::with_scheduler(&pkg, config).run());
    assert_eq!(via_new, via_wheel);
}

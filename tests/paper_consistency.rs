//! Cross-crate consistency with the paper's published numbers.
//!
//! These tests tie together the catalog (`maxdo`), the behaviour model
//! (`timemodel`), the packaging (`workunit`), the dedicated-grid baseline
//! (`gridsim`) and the validation accounting against the constants in
//! `hcmd::config::paper` — the same comparisons EXPERIMENTS.md tabulates.

use hcmd::config::paper;
use maxdo::{CostModel, ProteinLibrary};
use timemodel::{CalibrationCampaign, CostMatrix, Workload};
use workunit::CampaignPackage;

fn catalog_and_matrix() -> (&'static ProteinLibrary, &'static CostMatrix) {
    use std::sync::OnceLock;
    static DATA: OnceLock<(ProteinLibrary, CostMatrix)> = OnceLock::new();
    let (lib, m) = DATA.get_or_init(|| {
        let lib = ProteinLibrary::phase1_catalog();
        let m = CostMatrix::phase1(&lib);
        (lib, m)
    });
    (lib, m)
}

#[test]
fn formula1_total_is_conserved_across_crates() {
    let (lib, matrix) = catalog_and_matrix();
    // timemodel's formula (1) …
    let total = timemodel::total_cpu_seconds(lib, matrix);
    // … equals the per-protein workload sum …
    let workload = Workload::derive(lib, matrix);
    assert!((workload.total_seconds - total).abs() < 1e-6 * total);
    // … equals the sum of every packaged workunit's estimate (packaging
    // neither loses nor invents work — §4.2's structural constraints) …
    let pkg = CampaignPackage::new(lib, matrix, workunit::IDEAL_WU_SECONDS);
    assert!((pkg.total_estimated_seconds() - total).abs() < 1e-6 * total);
    // … and equals what a dedicated grid must compute.
    let run = gridsim::DedicatedGrid::new(640).run_campaign(&pkg);
    assert!(
        (run.total_cpu.total_seconds() as f64 - total).abs() < 1.0,
        "dedicated total {} vs formula {}",
        run.total_cpu.total_seconds(),
        total
    );
}

#[test]
fn phase1_total_matches_the_papers_1488_years() {
    let (lib, matrix) = catalog_and_matrix();
    let total_years = timemodel::total_cpu_seconds(lib, matrix) / (365.25 * 86_400.0);
    let paper_years = paper::phase1_total().total_years();
    assert!(
        (total_years - paper_years).abs() / paper_years < 0.05,
        "{total_years} vs {paper_years}"
    );
}

#[test]
fn workunit_counts_match_figure4() {
    let (lib, matrix) = catalog_and_matrix();
    let wu10 = CampaignPackage::new(lib, matrix, 10.0 * 3600.0).count();
    let wu4 = CampaignPackage::new(lib, matrix, 4.0 * 3600.0).count();
    // Paper: 1,364,476 and 3,599,937. Ours must land within 5 %.
    assert!(
        (wu10 as f64 - paper::WORKUNITS_H10 as f64).abs() / (paper::WORKUNITS_H10 as f64) < 0.05,
        "h=10: {wu10}"
    );
    assert!(
        (wu4 as f64 - paper::WORKUNITS_H4 as f64).abs() / (paper::WORKUNITS_H4 as f64) < 0.05,
        "h=4: {wu4}"
    );
}

#[test]
fn minimal_workunits_are_on_the_papers_order() {
    let (lib, matrix) = catalog_and_matrix();
    let w = Workload::derive(lib, matrix);
    // §4.1: 49,481,544 potential workunits (= 168 · Σ Nsep). Band: ±25 %
    // (this is n · ΣNsep of a synthetic catalog).
    let ratio = w.minimal_workunits as f64 / paper::MINIMAL_WORKUNITS as f64;
    assert!(
        (0.75..1.25).contains(&ratio),
        "minimal workunits {}",
        w.minimal_workunits
    );
}

#[test]
fn calibration_campaign_fits_640_processors_in_one_day() {
    let (lib, _) = catalog_and_matrix();
    let model = CostModel::reference(lib);
    let report = CalibrationCampaign {
        processors: paper::CALIBRATION_PROCESSORS,
    }
    .run(lib, &model);
    assert_eq!(report.jobs, 168 * 168);
    assert!(
        report.fits_in_one_day(),
        "makespan {} s exceeds a day",
        report.makespan_seconds
    );
    // §4.1: "this 168² run consumed more than 73 days of cpu time".
    assert!(report.total_cpu.total_days() > 73.0);
}

#[test]
fn dataset_size_matches_section_52() {
    let (lib, _) = catalog_and_matrix();
    let report = validation::DatasetReport::for_library(lib);
    assert_eq!(report.file_count, 168 * 168);
    let gb = report.uncompressed_gb();
    assert!(
        (gb - paper::DATASET_GB).abs() / paper::DATASET_GB < 1.0,
        "dataset {gb} GB vs paper {} GB",
        paper::DATASET_GB
    );
}

#[test]
fn production_packaging_mean_matches_figure8() {
    let (lib, matrix) = catalog_and_matrix();
    let pkg = CampaignPackage::new(lib, matrix, workunit::PRODUCTION_WU_SECONDS);
    let rep = workunit::distribution_report(&pkg);
    // Paper: average 3 h 18 m 47 s = 11,927 s; most workunits between 3
    // and 4 hours. Our synthetic tail of irreducible over-target units is
    // slightly heavier, so the band is 15 %.
    assert!(
        (rep.mean_seconds - paper::PACKAGED_MEAN_SECONDS).abs() / paper::PACKAGED_MEAN_SECONDS
            < 0.15,
        "mean {} s vs paper {} s",
        rep.mean_seconds,
        paper::PACKAGED_MEAN_SECONDS
    );
    // The mode bin sits in the 3–4 h band.
    let mode = rep.histogram.mode_bin().expect("non-empty");
    let (lo, hi) = rep.histogram.bin_edges(mode);
    assert!(
        lo >= 2.5 * 3600.0 && hi <= 4.05 * 3600.0,
        "mode bin {lo}..{hi}"
    );
}

#[test]
fn launch_schedule_and_progression_skew() {
    // §5.1 + Figure 7: with the cheapest-first order, finishing 85 % of
    // the proteins only finishes ~half the computation.
    let (lib, matrix) = catalog_and_matrix();
    let pkg = CampaignPackage::new(lib, matrix, workunit::PRODUCTION_WU_SECONDS);
    let schedule = workunit::LaunchSchedule::cheapest_first(&pkg);
    let fractions = schedule.cumulative_work_fractions();
    let at_85_percent = fractions[(0.85 * 168.0) as usize];
    assert!(
        (0.30..0.60).contains(&at_85_percent),
        "cumulative work at 85 % of proteins: {at_85_percent}"
    );
}

#[test]
fn speed_down_decomposition_is_consistent_with_the_host_model() {
    // The §6 narrative decomposition and the simulated host population
    // must agree on the net factor within ~15 %.
    let narrative = metrics::speeddown::SpeedDownDecomposition::paper_narrative();
    let mut accounted = 0.0;
    let n = 400;
    let params = gridsim::HostParams::wcg_2007();
    for id in 0..n {
        let mut h = gridsim::Host::sample(gridsim::HostId(id), &params, 3);
        accounted += h.plan_execution(12_000.0, 400.0).accounted_seconds;
    }
    let simulated = accounted / (n as f64 * 12_000.0);
    let predicted = narrative.predicted_factor();
    assert!(
        (simulated - predicted).abs() / predicted < 0.15,
        "simulated {simulated} vs narrative {predicted}"
    );
}

#[test]
fn packaging_is_robust_to_calibration_noise() {
    // The §4.2 design-robustness claim: a ±10 % calibration measurement
    // error moves the production workunit count by only a few percent —
    // the slice-by-estimate design tolerates imperfect Grid'5000 numbers.
    let (lib, matrix) = catalog_and_matrix();
    let n0 = CampaignPackage::new(lib, matrix, workunit::PRODUCTION_WU_SECONDS).count();
    let noisy = timemodel::perturb_matrix(matrix, 0.10, 5);
    let n1 = CampaignPackage::new(lib, &noisy, workunit::PRODUCTION_WU_SECONDS).count();
    let shift = (n1 as f64 - n0 as f64).abs() / n0 as f64;
    assert!(
        shift < 0.05,
        "workunit count moved {n0} -> {n1} ({shift:.3})"
    );
}

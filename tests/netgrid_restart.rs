//! Journal recovery: a crashed server restarts into the exact state it
//! lost, and the campaign still finishes byte-identical to an
//! uninterrupted run.
//!
//! These tests drive a journaled [`GridState`] through a scripted
//! history covering every transition class the journal records — quorum
//! validation, a duplicate, a quorum rejection, a bounds rejection, a
//! deadline expiry, backoffs — then "crash" it (drop it with no clean
//! shutdown; the wal on disk is all that survives) and recover with
//! [`open_journaled`]. Recovery must reconstruct `ServerStats`,
//! `NetStats` and the resume clock exactly, and draining the recovered
//! state to completion must produce the same merged artifact as the
//! in-process baseline, byte for byte.
//!
//! The process-level version of the same property (SIGKILL of a live
//! `hcmd-server`, restart from `--journal`) lives in
//! `crates/netgrid/tests/restart_kill.rs` and the CI restart-smoke job.

use gridsim::server::{ServerConfig, ServerStats};
use gridsim::SimTime;
use netgrid::{
    open_journaled, CampaignParams, FsyncPolicy, GridState, JournalConfig, NetCampaign, NetStats,
    ServerFaults, ShardSpec, TrustConfig, Verdict, WorkReply,
};
use std::path::PathBuf;

fn t(s: f64) -> SimTime {
    SimTime::new(s)
}

fn server_config() -> ServerConfig {
    ServerConfig {
        deadline_seconds: 10.0,
        ..ServerConfig::default()
    }
}

fn journal_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hcmd-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(campaign: &NetCampaign, cfg: &JournalConfig) -> (GridState, f64) {
    open_journaled(
        cfg,
        campaign,
        server_config(),
        ServerFaults::default(),
        ShardSpec::solo(),
    )
    .expect("journal opens")
}

fn fetch(state: &mut GridState, now: f64, agent: u64) -> gridsim::server::ReplicaAssignment {
    match state.fetch(t(now), agent) {
        WorkReply::Assigned(a) => a,
        other => panic!("expected work, got {other:?}"),
    }
}

/// The scripted mid-campaign history: every journal record class fires
/// at least once before the "crash".
fn run_script(state: &mut GridState, campaign: &NetCampaign) {
    let a = fetch(state, 0.0, 1);
    let b = fetch(state, 0.0, 2);
    let c = fetch(state, 0.0, 3);
    assert_eq!(a.workunit, b.workunit, "quorum sibling first");
    assert_ne!(a.workunit, c.workunit);
    let honest = campaign.compute(campaign.spec(a.workunit));

    // a: first candidate of the quorum pair.
    let d1 = state.report(t(1.0), campaign, a.replica, a.workunit, honest.clone());
    assert_eq!(d1.verdict, Verdict::QuorumPending);
    // a retransmits: dropped at the wire layer.
    let d2 = state.report(t(1.2), campaign, a.replica, a.workunit, honest.clone());
    assert_eq!(d2.verdict, Verdict::Duplicate);
    // b disagrees byte-for-byte: quorum rejection + error reissue.
    let mut corrupt = honest.clone();
    corrupt.rows[0].eelec += 1e-9;
    let d3 = state.report(t(2.0), campaign, b.replica, b.workunit, corrupt);
    assert_eq!(d3.verdict, Verdict::QuorumRejected);
    // A fourth agent draws c's quorum sibling and reports out of
    // bounds: bounds rejection + error reissue.
    let d4 = fetch(state, 3.0, 4);
    let mut bad = campaign.compute(campaign.spec(d4.workunit));
    bad.rows[0].elj = f64::INFINITY;
    let d5 = state.report(t(4.0), campaign, d4.replica, d4.workunit, bad);
    assert_eq!(d5.verdict, Verdict::BoundsRejected);
    // c never reports; the sweep at t=11 expires it (10 s deadline).
    assert_eq!(state.sweep(t(11.0)), 1);
}

/// Finishes the campaign honestly: sweep, then fetch-and-report until
/// every workunit validates.
fn drain(state: &mut GridState, campaign: &NetCampaign) {
    let mut now = 12.0;
    while !state.is_campaign_complete() {
        now += 0.5;
        state.sweep(t(now));
        while let WorkReply::Assigned(a) = state.fetch(t(now), 9) {
            let out = campaign.compute(campaign.spec(a.workunit));
            state.report(t(now), campaign, a.replica, a.workunit, out);
        }
    }
}

fn artifact_json(state: &GridState) -> String {
    serde_json::to_string(&state.accepted_outputs().expect("campaign complete")).unwrap()
}

fn baseline_json(campaign: &NetCampaign) -> String {
    serde_json::to_string(&campaign.baseline_outputs()).unwrap()
}

/// Captured live state to compare recovery against.
fn crash_point(state: &GridState) -> (ServerStats, NetStats, f64) {
    (state.server_stats(), state.net_stats, state.last_now())
}

#[test]
fn scripted_history_replays_to_the_exact_live_state_and_artifact() {
    let campaign = NetCampaign::build(CampaignParams::tiny());
    let cfg = JournalConfig {
        fsync: FsyncPolicy::EveryN(4),
        snapshot_every: 0, // pure wal replay
        ..JournalConfig::new(journal_dir("script"))
    };

    let (mut live, resume) = open(&campaign, &cfg);
    assert_eq!(resume, 0.0, "fresh journal starts the clock at zero");
    run_script(&mut live, &campaign);
    let (stats, net, last_now) = crash_point(&live);
    assert!(net.duplicates_dropped >= 1 && net.quorum_rejected >= 1);
    assert!(net.bounds_rejected >= 1 && net.deadline_expiries >= 1);
    drop(live); // crash: no clean shutdown exists, the wal is the truth

    let (mut recovered, resume) = open(&campaign, &cfg);
    assert_eq!(recovered.server_stats(), stats, "ServerStats reconstructed");
    assert_eq!(recovered.net_stats, net, "NetStats reconstructed");
    assert_eq!(resume, last_now, "clock resumes where the journal ends");

    drain(&mut recovered, &campaign);
    assert_eq!(
        artifact_json(&recovered),
        baseline_json(&campaign),
        "merged artifact after crash+restart must equal the baseline"
    );
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

#[test]
fn torn_wal_tail_recovers_a_consistent_prefix_and_still_completes() {
    let campaign = NetCampaign::build(CampaignParams::tiny());
    let cfg = JournalConfig {
        snapshot_every: 0,
        ..JournalConfig::new(journal_dir("torn"))
    };

    let (mut live, _) = open(&campaign, &cfg);
    run_script(&mut live, &campaign);
    let (_, net, _) = crash_point(&live);
    drop(live);

    // Tear the tail mid-frame, as a crash between write and sync would:
    // the last record was the expiring sweep.
    let wal = cfg.dir.join("wal.bin");
    let bytes = std::fs::read(&wal).unwrap();
    std::fs::write(&wal, &bytes[..bytes.len() - 7]).unwrap();

    let (mut recovered, _) = open(&campaign, &cfg);
    assert_eq!(
        recovered.net_stats.deadline_expiries,
        net.deadline_expiries - 1,
        "the torn sweep record is dropped — state is the prior prefix"
    );
    // The expiry re-happens on the next sweep; the campaign still
    // converges to the identical artifact.
    drain(&mut recovered, &campaign);
    assert_eq!(artifact_json(&recovered), baseline_json(&campaign));
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

#[test]
fn snapshot_compaction_bounds_the_wal_and_recovery_stays_exact() {
    let campaign = NetCampaign::build(CampaignParams::tiny());
    let cfg = JournalConfig {
        snapshot_every: 4, // compact aggressively
        ..JournalConfig::new(journal_dir("snap"))
    };

    let (mut live, _) = open(&campaign, &cfg);
    run_script(&mut live, &campaign);
    let (stats, net, last_now) = crash_point(&live);
    drop(live);

    let snapshot = cfg.dir.join("snapshot.bin");
    assert!(snapshot.exists(), "compaction must have run");
    let wal_len = std::fs::metadata(cfg.dir.join("wal.bin")).unwrap().len();
    let snap_len = std::fs::metadata(&snapshot).unwrap().len();
    assert!(
        wal_len < snap_len,
        "compaction keeps the wal short: wal={wal_len}B snapshot={snap_len}B"
    );

    let (mut recovered, resume) = open(&campaign, &cfg);
    assert_eq!(recovered.server_stats(), stats);
    assert_eq!(recovered.net_stats, net);
    assert_eq!(resume, last_now);
    drain(&mut recovered, &campaign);
    assert_eq!(artifact_json(&recovered), baseline_json(&campaign));
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

#[test]
fn fsync_batch_phase_survives_restart() {
    let campaign = NetCampaign::build(CampaignParams::tiny());
    let cfg = JournalConfig {
        fsync: FsyncPolicy::EveryN(4),
        snapshot_every: 0,
        ..JournalConfig::new(journal_dir("fsync-phase"))
    };

    // Three appends into a batch of four: phase 3, no fsync yet.
    let (mut live, _) = open(&campaign, &cfg);
    for agent in 1..=3 {
        let _ = fetch(&mut live, 0.0, agent);
    }
    assert_eq!(live.journal_fsync_phase(), Some(3));
    drop(live); // crash mid-batch

    // Recovery replays the three-record tail; the batch counter must
    // resume at 3, not restart at 0 — otherwise the next crash could
    // lose up to 2N-1 appends instead of the promised at-most-N.
    let (mut recovered, _) = open(&campaign, &cfg);
    assert_eq!(
        recovered.journal_fsync_phase(),
        Some(3),
        "every=N phase must survive restart"
    );

    // The very next append completes the inherited batch and fsyncs,
    // wrapping the phase to 0 on the same boundary as the live run.
    let _ = fetch(&mut recovered, 0.5, 4);
    assert_eq!(recovered.journal_fsync_phase(), Some(0));
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

#[test]
fn journal_of_a_different_campaign_is_refused() {
    let campaign = NetCampaign::build(CampaignParams::tiny());
    let cfg = JournalConfig::new(journal_dir("mismatch"));
    let (mut live, _) = open(&campaign, &cfg);
    let a = fetch(&mut live, 0.0, 1);
    let _ = a;
    drop(live);

    // Same directory, different recipe: replay must refuse, not fork.
    let other = NetCampaign::build(CampaignParams {
        lib_seed: 8,
        ..CampaignParams::tiny()
    });
    let err = match open_journaled(
        &cfg,
        &other,
        server_config(),
        ServerFaults::default(),
        ShardSpec::solo(),
    ) {
        Ok(_) => panic!("foreign journal must be rejected"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("different campaign"), "got: {err}");
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

// --- trust-adaptive replication across a crash ---------------------------

fn trust_faults() -> ServerFaults {
    ServerFaults {
        trust: TrustConfig {
            spot_check_rate: 1.0, // every trusted single gets audited
            ..TrustConfig::on()
        },
        ..ServerFaults::default()
    }
}

/// Builds a mid-campaign trust state with every interesting feature
/// populated: two agents graduated to Trusted, a saboteur quarantined
/// mid-sentence, and one accepted single whose audit is still queued.
/// Returns the time the script ended at.
fn trust_script(state: &mut GridState, campaign: &NetCampaign) -> f64 {
    let mut now = 0.0;
    // Agents 1 and 2 earn Trusted with five honest quorum pairs.
    for _ in 0..5 {
        let a = fetch(state, now, 1);
        let b = fetch(state, now, 2);
        assert_eq!(a.workunit, b.workunit);
        let out = campaign.compute(campaign.spec(a.workunit));
        state.report(t(now + 1.0), campaign, a.replica, a.workunit, out.clone());
        let d = state.report(t(now + 2.0), campaign, b.replica, b.workunit, out);
        assert_eq!(d.verdict, Verdict::Accepted);
        now += 3.0;
    }
    // Agent 9 collects four consecutive quorum rejections and lands in
    // quarantine. Fresh probation agents carry the honest halves so
    // nobody else's band moves.
    for k in 0..4u64 {
        let a = fetch(state, now, 100 + k);
        let b = fetch(state, now, 9);
        assert_eq!(a.workunit, b.workunit);
        let honest = campaign.compute(campaign.spec(a.workunit));
        let mut corrupt = honest.clone();
        corrupt.rows[0].eelec += 1e-9;
        state.report(
            t(now + 1.0),
            campaign,
            a.replica,
            a.workunit,
            honest.clone(),
        );
        let d = state.report(t(now + 2.0), campaign, b.replica, b.workunit, corrupt);
        assert_eq!(d.verdict, Verdict::QuorumRejected);
        let c = fetch(state, now + 2.0, 200 + k);
        assert_eq!(c.workunit, a.workunit, "error reissue comes first");
        state.report(t(now + 3.0), campaign, c.replica, c.workunit, honest);
        now += 4.0;
    }
    // Trusted agent 1 lands a single; its audit is queued but unserved
    // at the crash.
    let a = fetch(state, now, 1);
    let out = campaign.compute(campaign.spec(a.workunit));
    let d = state.report(t(now + 1.0), campaign, a.replica, a.workunit, out);
    assert!(d.completed_workunit, "trusted single validates alone");
    now + 1.0
}

/// Drains a trust-on campaign with the two trusted agents: agent 1
/// computes fresh singles, agent 2 (and 1, for each other's audits)
/// serves the spot-check queue. Deterministic given a start time.
fn trust_drain(state: &mut GridState, campaign: &NetCampaign, start: f64) {
    let mut now = start;
    while !state.is_campaign_complete() {
        now += 0.5;
        state.sweep(t(now));
        for agent in [1, 2] {
            while let WorkReply::Assigned(a) = state.fetch(t(now), agent) {
                let out = campaign.compute(campaign.spec(a.workunit));
                state.report(t(now), campaign, a.replica, a.workunit, out);
            }
        }
    }
}

#[test]
fn trust_bands_and_quarantine_replay_exactly_across_a_crash() {
    let campaign = NetCampaign::build(CampaignParams::tiny());
    let cfg = JournalConfig {
        fsync: FsyncPolicy::EveryN(4),
        snapshot_every: 8, // exercise trust state through the snapshot too
        ..JournalConfig::new(journal_dir("trust"))
    };

    let (mut live, resume) = open_journaled(
        &cfg,
        &campaign,
        server_config(),
        trust_faults(),
        ShardSpec::solo(),
    )
    .expect("journal opens");
    assert_eq!(resume, 0.0);
    let crash_now = trust_script(&mut live, &campaign);
    let (stats, net, last_now) = crash_point(&live);
    let live_trust = live.agent_trust_table();
    let live_summary = live.trust_summary().expect("trust on");
    assert_eq!(live_summary.quarantined, 1, "saboteur serving quarantine");
    assert!(!live.is_campaign_complete(), "audit still queued");
    drop(live); // crash

    let (mut recovered, resume) = open_journaled(
        &cfg,
        &campaign,
        server_config(),
        trust_faults(),
        ShardSpec::solo(),
    )
    .expect("recovery");
    assert_eq!(resume, last_now);
    assert_eq!(recovered.server_stats(), stats);
    assert_eq!(recovered.net_stats, net);
    assert_eq!(
        recovered.agent_trust_table(),
        live_trust,
        "per-agent trust ledgers reconstructed exactly"
    );
    assert_eq!(recovered.trust_summary(), Some(live_summary));

    // An uninterrupted twin run of the identical script...
    let mut twin = GridState::new(&campaign, server_config(), trust_faults());
    let twin_crash_now = trust_script(&mut twin, &campaign);
    assert_eq!(crash_now, twin_crash_now);

    // ...must agree with the crash-recovered state from here to the
    // end: same drain, same final trust state, same artifact.
    trust_drain(&mut recovered, &campaign, crash_now + 1.0);
    trust_drain(&mut twin, &campaign, crash_now + 1.0);
    assert_eq!(
        recovered.agent_trust_table(),
        twin.agent_trust_table(),
        "final trust state must not depend on the crash"
    );
    let q9 = recovered.agent_trust(9).expect("saboteur ledger");
    assert_eq!(q9.quarantine_count, 1, "quarantine survived the restart");
    assert_eq!(artifact_json(&recovered), artifact_json(&twin));
    assert_eq!(artifact_json(&recovered), baseline_json(&campaign));
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

#[test]
fn trust_journal_refuses_a_different_trust_policy() {
    let campaign = NetCampaign::build(CampaignParams::tiny());
    let cfg = JournalConfig::new(journal_dir("trust-mismatch"));
    let (mut live, _) = open_journaled(
        &cfg,
        &campaign,
        server_config(),
        trust_faults(),
        ShardSpec::solo(),
    )
    .expect("journal opens");
    let _ = fetch(&mut live, 0.0, 1);
    drop(live);

    // Same campaign, trust off: the scheduling decisions in the wal
    // were made under a different policy — replay must refuse.
    let err = match open_journaled(
        &cfg,
        &campaign,
        server_config(),
        ServerFaults::default(),
        ShardSpec::solo(),
    ) {
        Ok(_) => panic!("journal under a different trust policy must be rejected"),
        Err(e) => e,
    };
    let msg = err.to_string();
    assert!(
        msg.contains("faults") || msg.contains("trust") || msg.contains("different"),
        "got: {msg}"
    );
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

/// The registry keeps one journal per campaign under `DIR/<name>/`. A
/// crash mid-contention must recover every slot from its own journal,
/// re-seed the fair-share ledger from the recovered delivered
/// ref-seconds, and still finish each campaign byte-identical to a solo
/// run — crossing a restart must not let the campaigns bleed into each
/// other's artifacts.
#[test]
fn multi_campaign_registry_recovers_per_campaign_journals() {
    use netgrid::{CampaignDef, MultiGrid};

    let base = CampaignParams::tiny();
    let defs = vec![
        CampaignDef {
            name: "alpha".into(),
            params: base,
            share: 0.7,
            priority: 0,
        },
        CampaignDef {
            name: "beta".into(),
            params: CampaignParams {
                lib_seed: base.lib_seed + 1,
                ..base
            },
            share: 0.3,
            priority: 0,
        },
    ];
    let cfg = JournalConfig {
        fsync: FsyncPolicy::Never,
        ..JournalConfig::new(journal_dir("multi"))
    };
    let open_multi = |defs: Vec<CampaignDef>| {
        MultiGrid::open(
            defs,
            server_config(),
            ServerFaults::default(),
            ShardSpec::solo(),
            Some(&cfg),
        )
        .expect("registry opens journaled")
    };

    // Contended phase: a few scripted rounds across both campaigns.
    let (mut grid, offset) = open_multi(defs.clone());
    assert_eq!(offset, 0.0);
    let mut now = 0.0;
    for round in 0..6 {
        for agent in 1..=3u64 {
            now += 0.01;
            let (cidx, reply) = grid.fetch(t(now), agent, &[true, true]);
            let WorkReply::Assigned(a) = reply else {
                continue;
            };
            // Crash with one replica still in flight on the last round.
            if round == 5 && agent == 3 {
                break;
            }
            let slot = grid.slot(cidx).expect("slot");
            let out = slot.campaign.compute(slot.campaign.spec(a.workunit));
            now += 0.01;
            grid.report(t(now), cidx, a.replica, a.workunit, out);
        }
    }
    grid.flush_journals();
    let delivered_at_crash: Vec<f64> = (0..grid.len()).map(|i| grid.fair().delivered(i)).collect();
    drop(grid); // no clean shutdown: the wal is all that survives

    let (mut grid, offset) = open_multi(defs.clone());
    assert!(offset > 0.0, "recovery resumes a moved clock");
    for (i, &d) in delivered_at_crash.iter().enumerate() {
        assert!(
            (grid.fair().delivered(i) - d).abs() < 1e-6,
            "campaign {i}: fair ledger re-seeded {} but {d} was delivered pre-crash",
            grid.fair().delivered(i)
        );
    }

    // Drain to completion and byte-compare each campaign to its solo
    // reference outputs.
    let mut now = grid.last_now();
    let mut guard = 0u64;
    while !grid.all_complete() {
        guard += 1;
        assert!(guard < 100_000, "recovered registry did not converge");
        now += 0.5;
        grid.sweep(t(now));
        for agent in 1..=3u64 {
            now += 0.01;
            let (cidx, reply) = grid.fetch(t(now), agent, &[true, true]);
            let WorkReply::Assigned(a) = reply else {
                continue;
            };
            let slot = grid.slot(cidx).expect("slot");
            let out = slot.campaign.compute(slot.campaign.spec(a.workunit));
            now += 0.01;
            grid.report(t(now), cidx, a.replica, a.workunit, out);
        }
    }
    for slot in grid.slots() {
        assert_eq!(
            artifact_json(&slot.state),
            baseline_json(&slot.campaign),
            "campaign {} artifact diverged across the crash",
            slot.def.name
        );
    }
    // The per-campaign journals really are separate directories.
    for name in ["alpha", "beta"] {
        assert!(
            cfg.dir.join(name).is_dir(),
            "expected journal subdirectory {name}"
        );
    }
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

//! End-to-end campaign integration across all crates: package a small
//! workload, run it on the volunteer grid, and push the trace through the
//! §5–§7 analyses (phases, Table 2, Table 3).

use gridsim::{
    MembershipModel, ProjectPhases, SeasonalityModel, SharePhase, VolunteerGridConfig,
    VolunteerGridSim,
};
use hcmd::phase2::Phase2Assumptions;
use hcmd::phases::phase_summaries;
use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
use timemodel::CostMatrix;
use workunit::CampaignPackage;

/// A small two-phase campaign on a fixed 60-host grid.
fn run_small_campaign(seed: u64) -> (gridsim::CampaignTrace, ProjectPhases) {
    let lib = ProteinLibrary::generate(LibraryConfig::tiny(4), 11);
    let matrix = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.2));
    let pkg = CampaignPackage::new(&lib, &matrix, 2.0 * 3600.0);
    let phases = ProjectPhases::new(vec![
        SharePhase {
            start_day: 0,
            share_start: 0.1,
            share_end: 0.1,
            days: 2,
            name: "control period",
        },
        SharePhase {
            start_day: 2,
            share_start: 1.0,
            share_end: 1.0,
            days: 363,
            name: "full power working phase",
        },
    ]);
    let config = VolunteerGridConfig {
        seed,
        host_params: gridsim::HostParams::wcg_2007(),
        server: gridsim::ServerConfig {
            validation_switch_day: Some(4),
            deadline_seconds: 5.0 * 86_400.0,
            feeder: None,
        },
        membership: MembershipModel {
            reference_vftp: 40.0,
            reference_day: 1,
            growth_exponent: 0.0,
            seasonality: SeasonalityModel::flat(),
            mean_accounted_fraction: 0.5,
        },
        phases: phases.clone(),
        scale_divisor: 1,
        snapshot_days: vec![2, 10_000],
        max_days: 500,
        membership_start_day: 0,
        detailed_sessions: false,
    };
    (VolunteerGridSim::new(&pkg, config).run(), phases)
}

#[test]
fn campaign_finishes_and_conserves_work() {
    let (trace, _) = run_small_campaign(5);
    assert!(trace.completion_day.is_some(), "campaign stalled");
    // Every receptor's workunits all completed.
    let last = trace.snapshots.last().expect("snapshots");
    assert_eq!(last.wus_done, trace.receptor_wu_total);
    // Results: received ≥ useful = workunit count.
    let total_wus: u32 = trace.receptor_wu_total.iter().sum();
    assert_eq!(trace.results_useful, total_wus as u64);
    assert!(trace.results_received >= trace.results_useful);
}

#[test]
fn phase_analysis_reflects_the_share_ramp() {
    let (trace, phases) = run_small_campaign(5);
    let summaries = phase_summaries(&trace, &phases);
    let control = summaries
        .iter()
        .find(|s| s.name == "control period")
        .expect("control phase");
    let full = summaries
        .iter()
        .find(|s| s.name == "full power working phase")
        .expect("full power phase");
    assert!(
        full.mean_project_vftp > control.mean_project_vftp * 2.0,
        "full {} vs control {}",
        full.mean_project_vftp,
        control.mean_project_vftp
    );
}

#[test]
fn table2_from_the_measured_campaign() {
    let (trace, _) = run_small_campaign(5);
    let end = trace.completion_day.unwrap() + 1;
    let sd = trace.speed_down();
    let t2 = hcmd::table2(
        trace.mean_project_vftp(0, end),
        trace.mean_project_vftp(2, end),
        sd.raw_factor(),
    );
    // The dedicated equivalent is always far smaller than the volunteer
    // VFTP — the paper's core message.
    for row in &t2.rows {
        assert!(row.dedicated < row.wcg_vftp / 2.0);
        assert!(row.dedicated > 0.0);
    }
}

#[test]
fn phase2_projection_from_measured_campaign_scales_like_the_paper() {
    let (trace, _) = run_small_campaign(5);
    let a = Phase2Assumptions::paper().with_measured_phase1(trace.consumed_cpu_seconds(), 2.0);
    let p = a.project();
    // The structural ratios hold regardless of the phase-1 magnitude.
    assert!((p.work_ratio - 5.66).abs() < 0.01);
    assert!((p.phase2_cpu_seconds / trace.consumed_cpu_seconds() - p.work_ratio).abs() < 1e-9);
    assert!((p.weeks_at_phase1_rate - 2.0 * p.work_ratio).abs() < 1e-9);
}

#[test]
fn different_seeds_same_work_different_dynamics() {
    let (a, _) = run_small_campaign(1);
    let (b, _) = run_small_campaign(2);
    // Same workload…
    assert_eq!(a.receptor_wu_total, b.receptor_wu_total);
    assert_eq!(a.reference_total_seconds, b.reference_total_seconds);
    // …different stochastic execution.
    assert_ne!(a.consumed_cpu_seconds(), b.consumed_cpu_seconds());
    // …but both complete everything.
    assert_eq!(a.results_useful, b.results_useful);
}

/// The scale-gate contract (DESIGN.md): dividing the workload and the
/// population by the same factor preserves intensive quantities. Run the
/// HCMD campaign at 1/50 and 1/100 and compare.
#[test]
fn intensive_quantities_are_scale_invariant() {
    let run = |scale: u32| {
        let full = ProteinLibrary::phase1_catalog();
        let matrix = CostMatrix::phase1(&full);
        let lib = full.with_scaled_nsep(scale);
        let pkg = CampaignPackage::new(&lib, &matrix, workunit::PRODUCTION_WU_SECONDS);
        VolunteerGridSim::new(&pkg, gridsim::VolunteerGridConfig::hcmd_phase1(scale, 2007)).run()
    };
    let a = run(50);
    let b = run(100);
    // Completion day within 15 %.
    let (da, db) = (
        a.completion_day.expect("a completes") as f64,
        b.completion_day.expect("b completes") as f64,
    );
    assert!((da - db).abs() / da < 0.15, "completion {da} vs {db}");
    // Speed-down within 10 %.
    let (sa, sb) = (a.speed_down().raw_factor(), b.speed_down().raw_factor());
    assert!((sa - sb).abs() / sa < 0.10, "raw speed-down {sa} vs {sb}");
    // Full-scale consumed CPU within 15 %.
    let (ca, cb) = (
        a.consumed_cpu_seconds() * 50.0,
        b.consumed_cpu_seconds() * 100.0,
    );
    assert!((ca - cb).abs() / ca < 0.15, "consumed {ca} vs {cb}");
    // Mean project VFTP within 15 %.
    let (va, vb) = (a.mean_project_vftp(0, 182), b.mean_project_vftp(0, 182));
    assert!((va - vb).abs() / va < 0.15, "vftp {va} vs {vb}");
}

/// A campaign behind a BOINC feeder cache (§3.2 / reference [13])
/// completes with the same useful-result count as the direct-queue
/// server; cold-cache misses are visible but harmless.
#[test]
fn feeder_cache_does_not_change_campaign_outcomes() {
    let lib = ProteinLibrary::generate(LibraryConfig::tiny(4), 11);
    let matrix = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.2));
    let pkg = CampaignPackage::new(&lib, &matrix, 2.0 * 3600.0);
    let run = |feeder| {
        let mut config = VolunteerGridConfig::hcmd_phase1(1, 31);
        config.membership = MembershipModel {
            reference_vftp: 40.0,
            reference_day: 1,
            growth_exponent: 0.0,
            seasonality: SeasonalityModel::flat(),
            mean_accounted_fraction: 0.5,
        };
        config.phases = ProjectPhases::new(vec![SharePhase {
            start_day: 0,
            share_start: 1.0,
            share_end: 1.0,
            days: 3 * 365,
            name: "full",
        }]);
        config.membership_start_day = 0;
        config.server.feeder = feeder;
        VolunteerGridSim::new(&pkg, config).run()
    };
    let direct = run(None);
    let fed = run(Some(gridsim::FeederConfig::default()));
    assert!(direct.completion_day.is_some());
    assert!(fed.completion_day.is_some());
    assert_eq!(direct.results_useful, fed.results_useful);
}

//! Determinism of parallel execution.
//!
//! The vendored rayon pool guarantees results are bit-identical to a
//! sequential run and independent of the thread count (chunking is a
//! pure function of the input length). These tests pin that guarantee
//! down end-to-end for the three parallel consumers: the docking map,
//! the calibration matrix, and the validation pipeline — comparing
//! serialized JSON bytes, not approximate values.

use maxdo::{
    CostModel, DockingEngine, DockingRow, EnergyParams, EulerZyz, LibraryConfig, MinimizeParams,
    ProteinId, ProteinLibrary, Vec3,
};
use proptest::prelude::*;
use timemodel::CalibrationCampaign;
use validation::checks::{check_file, ValueRanges};
use validation::format::ResultFile;
use validation::parallel::check_files_parallel;

/// Serializes to JSON bytes — the strictest equality we can ask for.
fn bytes<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value).expect("serializes")
}

fn small_engine(lib: &ProteinLibrary, nsep: u32) -> DockingEngine<'_> {
    DockingEngine::new(
        &lib.proteins()[0],
        &lib.proteins()[1],
        nsep,
        EnergyParams::default(),
        MinimizeParams {
            max_iterations: 10,
            ..Default::default()
        },
    )
}

#[test]
fn docking_output_is_thread_count_independent() {
    let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 41);
    let engine = small_engine(&lib, 6);
    let serial = bytes(&engine.dock_range(1, engine.nsep()));
    for threads in [1, 2, 4, 8] {
        let parallel = bytes(&rayon::with_threads(threads, || engine.dock_map_parallel()));
        assert_eq!(parallel, serial, "threads = {threads}");
    }
}

#[test]
fn calibration_report_is_thread_count_independent() {
    let lib = ProteinLibrary::generate(LibraryConfig::tiny(4), 9);
    let model = CostModel::with_kappa(0.1);
    let campaign = CalibrationCampaign { processors: 16 };
    let single = bytes(&rayon::with_threads(1, || campaign.run(&lib, &model)));
    for threads in [2, 4, 8] {
        let multi = bytes(&rayon::with_threads(threads, || campaign.run(&lib, &model)));
        assert_eq!(multi, single, "threads = {threads}");
    }
}

/// A deterministic batch of result files, some corrupted, derived from a
/// seed.
fn result_files(seed: u64, count: usize) -> Vec<ResultFile> {
    (0..count as u32)
        .map(|i| {
            let corrupt = (seed + i as u64).is_multiple_of(5);
            let mut rows: Vec<DockingRow> = (1..=3u32)
                .flat_map(|isep| {
                    (1..=2u32).map(move |irot| DockingRow {
                        isep,
                        irot,
                        position: Vec3::new(seed as f64 + i as f64, 0.0, 0.0),
                        orientation: EulerZyz::default(),
                        elj: -1.0,
                        eelec: 0.5,
                    })
                })
                .collect();
            if corrupt {
                rows[1].elj = f64::NAN;
            }
            ResultFile {
                receptor: ProteinId(0),
                ligand: ProteinId(i + 1),
                isep_start: 1,
                isep_end: 3,
                nrot: 2,
                rows,
            }
        })
        .collect()
}

#[test]
fn validation_report_is_worker_count_independent() {
    let files = result_files(3, 23);
    let ranges = ValueRanges::default();
    let sequential: Vec<_> = files.iter().flat_map(|f| check_file(f, &ranges)).collect();
    let expect = bytes(&sequential);
    for workers in [1, 2, 4, 8] {
        let got = bytes(&check_files_parallel(&files, &ranges, workers));
        assert_eq!(got, expect, "workers = {workers}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Parallel docking is byte-identical to serial for any small
    /// library.
    #[test]
    fn docking_matches_serial_for_any_library(seed in 0u64..200) {
        let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), seed);
        let engine = small_engine(&lib, 4);
        let serial = bytes(&engine.dock_range(1, engine.nsep()));
        let parallel = bytes(&rayon::with_threads(4, || engine.dock_map_parallel()));
        prop_assert_eq!(parallel, serial);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Parallel validation is byte-identical to serial for any batch
    /// shape and worker count.
    #[test]
    fn validation_matches_serial_for_any_batch(
        seed in 0u64..1000,
        count in 1usize..40,
        workers in 1usize..9,
    ) {
        let files = result_files(seed, count);
        let ranges = ValueRanges::default();
        let sequential: Vec<_> =
            files.iter().flat_map(|f| check_file(f, &ranges)).collect();
        let parallel = check_files_parallel(&files, &ranges, workers);
        prop_assert_eq!(bytes(&parallel), bytes(&sequential));
    }
}

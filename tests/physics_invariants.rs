//! Physics invariants of the docking energy, as property tests.
//!
//! The interaction energy must be invariant under global rigid motions
//! (rotating or translating receptor *and* ligand together changes
//! nothing), the gradient must vanish where the energy is flat, and the
//! docking search must respect the symmetries of its inputs. These hold
//! for the real MAXDo and must hold for the reproduction — they pin the
//! energy/gradient implementation far more tightly than example-based
//! tests.

use maxdo::energy::interaction_energy;
use maxdo::{
    Bead, CellList, EnergyParams, EulerZyz, LibraryConfig, Mat3, Pose, Protein, ProteinId,
    ProteinLibrary, Vec3,
};
use proptest::prelude::*;

/// Applies a rotation + translation to every bead of a protein.
fn transform_protein(p: &Protein, rot: &Mat3, shift: Vec3) -> Protein {
    let beads: Vec<Bead> = p
        .beads()
        .iter()
        .map(|b| Bead {
            position: rot.apply(b.position) + shift,
            kind: b.kind,
        })
        .collect();
    Protein::new(p.id, p.name.clone(), beads)
}

fn pair() -> (Protein, Protein) {
    let lib = ProteinLibrary::generate(LibraryConfig::tiny(2), 2024);
    (lib.proteins()[0].clone(), lib.proteins()[1].clone())
}

fn energy_of(receptor: &Protein, ligand: &Protein, pose: &Pose, params: &EnergyParams) -> f64 {
    let cells = CellList::build(receptor, params.cutoff);
    interaction_energy(receptor, &cells, ligand, pose, params).total()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Rotating the whole system (receptor beads, ligand pose) leaves the
    /// energy unchanged: the force field has no preferred frame.
    #[test]
    fn energy_is_rotation_invariant(
        axis_x in -1.0f64..1.0, axis_y in -1.0f64..1.0, axis_z in -1.0f64..1.0,
        angle in 0.0f64..6.2,
        d in 0.0f64..6.0,
    ) {
        prop_assume!(Vec3::new(axis_x, axis_y, axis_z).norm() > 0.1);
        let (receptor, ligand) = pair();
        let params = EnergyParams::default();
        let pose = Pose::from_euler(
            EulerZyz { alpha: 0.4, beta: 0.8, gamma: 1.3 },
            Vec3::new(receptor.bounding_radius() + d, 1.0, -2.0),
        );
        let e0 = energy_of(&receptor, &ligand, &pose, &params);

        let rot = Mat3::from_axis_angle(Vec3::new(axis_x, axis_y, axis_z), angle);
        // Rotate receptor beads and the ligand's pose together. The
        // receptor must NOT be recentred by the constructor, so rotating
        // about the origin (its centroid) is safe.
        let receptor_r = transform_protein(&receptor, &rot, Vec3::ZERO);
        let pose_r = Pose {
            rotation: rot.mul_mat(&pose.rotation),
            translation: rot.apply(pose.translation),
        };
        let e1 = energy_of(&receptor_r, &ligand, &pose_r, &params);
        prop_assert!(
            (e0 - e1).abs() < 1e-6 * (1.0 + e0.abs()),
            "rotation changed energy: {e0} vs {e1}"
        );
    }

    /// The energy depends only on the *relative* geometry: the docking
    /// pose's energy equals the same pose evaluated after shifting the
    /// ligand's body frame arbitrarily (Protein::new recentres, so a
    /// shifted clone is the same rigid body).
    #[test]
    fn ligand_frame_shift_is_immaterial(
        sx in -50.0f64..50.0, sy in -50.0f64..50.0, sz in -50.0f64..50.0,
        d in 0.0f64..6.0,
    ) {
        let (receptor, ligand) = pair();
        let params = EnergyParams::default();
        let pose = Pose::from_euler(
            EulerZyz { alpha: 0.2, beta: 0.5, gamma: 2.0 },
            Vec3::new(receptor.bounding_radius() + d, 0.0, 1.0),
        );
        let e0 = energy_of(&receptor, &ligand, &pose, &params);
        let shifted = transform_protein(&ligand, &Mat3::IDENTITY, Vec3::new(sx, sy, sz));
        let e1 = energy_of(&receptor, &shifted, &pose, &params);
        prop_assert!(
            (e0 - e1).abs() < 1e-9 * (1.0 + e0.abs()),
            "frame shift changed energy: {e0} vs {e1}"
        );
    }

    /// Far separation ⇒ exactly zero energy and zero gradient (compact
    /// support of the cutoff-shifted force field).
    #[test]
    fn energy_has_compact_support(extra in 1.0f64..1e4) {
        let (receptor, ligand) = pair();
        let params = EnergyParams::default();
        let far = receptor.bounding_radius() + ligand.bounding_radius() + params.cutoff + extra;
        let pose = Pose::from_euler(EulerZyz::default(), Vec3::new(far, 0.0, 0.0));
        let cells = CellList::build(&receptor, params.cutoff);
        let g = maxdo::energy::energy_and_gradient(&receptor, &cells, &ligand, &pose, &params);
        prop_assert_eq!(g.energy.total(), 0.0);
        prop_assert_eq!(g.force.norm(), 0.0);
        prop_assert_eq!(g.torque.norm(), 0.0);
    }

    /// Rotation matrices from the orientation grid are orthonormal for
    /// every (irot, igamma) cell.
    #[test]
    fn orientation_grid_is_orthonormal(irot in 1u32..22, igamma in 0u32..10) {
        let grid = maxdo::OrientationGrid::new();
        let m = grid.orientation(irot, igamma).to_matrix();
        let should_be_identity = m.mul_mat(&m.transpose());
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((should_be_identity.rows[i][j] - expect).abs() < 1e-12);
            }
        }
        prop_assert!((m.det() - 1.0).abs() < 1e-12);
    }

    /// Pose perturbation by (dt, dw) then (-dt after un-rotating) is
    /// near-identity for small rotations — the minimiser's moves stay on
    /// the rigid manifold.
    #[test]
    fn perturbation_keeps_rotations_proper(
        wx in -0.3f64..0.3, wy in -0.3f64..0.3, wz in -0.3f64..0.3,
        tx in -5.0f64..5.0, ty in -5.0f64..5.0, tz in -5.0f64..5.0,
    ) {
        let pose = Pose::from_euler(
            EulerZyz { alpha: 1.0, beta: 0.7, gamma: 0.1 },
            Vec3::new(10.0, -3.0, 2.0),
        );
        let p = pose.perturbed(Vec3::new(tx, ty, tz), Vec3::new(wx, wy, wz));
        prop_assert!((p.rotation.det() - 1.0).abs() < 1e-9);
        // Orthonormality after perturbation.
        let i = p.rotation.mul_mat(&p.rotation.transpose());
        for r in 0..3 {
            for c in 0..3 {
                let expect = if r == c { 1.0 } else { 0.0 };
                prop_assert!((i.rows[r][c] - expect).abs() < 1e-9);
            }
        }
    }

    /// The reduced protein constructor's invariants hold for arbitrary
    /// bead clouds: centroid at origin, bounding radius tight.
    #[test]
    fn protein_constructor_invariants(
        beads in proptest::collection::vec(
            (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0),
            1..40,
        )
    ) {
        let p = Protein::new(
            ProteinId(0),
            "prop",
            beads
                .iter()
                .map(|&(x, y, z)| Bead {
                    position: Vec3::new(x, y, z),
                    kind: maxdo::BeadKind::Backbone,
                })
                .collect(),
        );
        let centroid = p
            .beads()
            .iter()
            .fold(Vec3::ZERO, |a, b| a + b.position)
            / p.bead_count() as f64;
        prop_assert!(centroid.norm() < 1e-9);
        let max_r = p
            .beads()
            .iter()
            .map(|b| b.position.norm())
            .fold(0.0, f64::max);
        prop_assert!((max_r - p.bounding_radius()).abs() < 1e-12);
    }
}

//! Property-based tests on the cross-crate invariants.

use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
use proptest::prelude::*;
use timemodel::CostMatrix;
use validation::format::ResultFile;
use validation::merge_couple_files;
use workunit::CampaignPackage;

/// A small library + matrix fixture parameterised by seed.
fn fixture(seed: u64) -> (ProteinLibrary, CostMatrix) {
    let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), seed);
    let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.1));
    (lib, m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Packaging tiles every couple's position range exactly, for any
    /// target duration.
    #[test]
    fn packaging_tiles_positions(seed in 0u64..50, h in 60.0f64..100_000.0) {
        let (lib, m) = fixture(seed);
        let pkg = CampaignPackage::new(&lib, &m, h);
        for (r, l) in lib.couples() {
            let mut chunks = Vec::new();
            pkg.for_each_workunit_of_couple(r, l, |wu| chunks.push(wu));
            let mut covered = 0u64;
            let mut next = 1u32;
            for wu in &chunks {
                prop_assert_eq!(wu.isep_start, next);
                covered += wu.positions as u64;
                next = wu.isep_end() + 1;
            }
            prop_assert_eq!(covered, lib.nsep(r) as u64);
        }
    }

    /// Packaging conserves formula (1)'s total exactly, for any h.
    #[test]
    fn packaging_conserves_work(seed in 0u64..50, h in 60.0f64..100_000.0) {
        let (lib, m) = fixture(seed);
        let pkg = CampaignPackage::new(&lib, &m, h);
        let total = timemodel::total_cpu_seconds(&lib, &m);
        let packaged = pkg.total_estimated_seconds();
        prop_assert!((packaged - total).abs() < 1e-9 * total);
    }

    /// Merging any partition of a couple's range reconstructs the whole
    /// file; any partition with a dropped chunk is rejected.
    #[test]
    fn merge_reconstructs_any_partition(
        nsep in 1u32..60,
        cuts in proptest::collection::vec(1u32..60, 0..6),
        drop_index in proptest::option::of(0usize..6),
    ) {
        // Build chunk boundaries from the random cut points.
        let mut bounds: Vec<u32> = cuts.into_iter().filter(|&c| c < nsep).collect();
        bounds.sort_unstable();
        bounds.dedup();
        let mut chunks = Vec::new();
        let mut start = 1u32;
        for &b in bounds.iter().chain(std::iter::once(&nsep)) {
            let end = b.max(start);
            chunks.push(make_chunk(start, end));
            start = end + 1;
        }
        let n_chunks = chunks.len();
        if let Some(d) = drop_index {
            if n_chunks > 1 && d < n_chunks {
                chunks.remove(d);
                prop_assert!(merge_couple_files(chunks, nsep).is_err());
                return Ok(());
            }
        }
        let merged = merge_couple_files(chunks, nsep).unwrap();
        prop_assert_eq!(merged.rows.len() as u32, nsep * 2);
        // Canonical order.
        for (i, row) in merged.rows.iter().enumerate() {
            prop_assert_eq!(row.isep as usize, i / 2 + 1);
        }
    }

    /// The slicing rule's invariants hold for arbitrary inputs (the §4.2
    /// floor/clamp rule).
    #[test]
    fn slicing_rule_bounds(h in 1.0f64..1e6, mct in 0.1f64..1e6, total in 1u32..100_000) {
        let per = workunit::positions_per_workunit(h, mct, total);
        prop_assert!(per >= 1 && per <= total);
        if per > 1 {
            // A multi-position workunit fits the target.
            prop_assert!(per as f64 * mct <= h);
        }
    }

    /// Ydhms round-trips through its components for arbitrary seconds.
    #[test]
    fn ydhms_component_round_trip(seconds in 0u64..10_u64.pow(13)) {
        let d = metrics::Ydhms::from_seconds(seconds);
        let re = metrics::Ydhms::new(d.years(), d.days(), d.hours(), d.minutes(), d.seconds());
        prop_assert_eq!(re.total_seconds(), seconds);
    }

    /// Histograms never lose observations.
    #[test]
    fn histogram_conserves_count(values in proptest::collection::vec(-1e6f64..1e6, 0..200)) {
        let mut h = metrics::Histogram::new(-100.0, 100.0, 13);
        h.record_all(values.iter().copied());
        prop_assert_eq!(h.total(), values.len() as u64);
    }

    /// The LPT makespan respects its classic bounds for arbitrary jobs.
    #[test]
    fn lpt_bounds(
        jobs in proptest::collection::vec(0.1f64..1e4, 1..60),
        procs in 1usize..16,
    ) {
        let makespan = timemodel::calibration::lpt_makespan(&jobs, procs);
        let total: f64 = jobs.iter().sum();
        let longest = jobs.iter().cloned().fold(0.0, f64::max);
        prop_assert!(makespan >= total / procs as f64 - 1e-9);
        prop_assert!(makespan >= longest - 1e-9);
        prop_assert!(makespan <= total + 1e-9);
        // Graham's LPT bound: ≤ (4/3 − 1/(3m)) · OPT ≤ 4/3 · max(lower bounds).
        let opt_lower = (total / procs as f64).max(longest);
        prop_assert!(makespan <= opt_lower * (4.0 / 3.0) + 1e-9);
    }

    /// Host execution plans are physically sane for any workload.
    #[test]
    fn host_plans_are_sane(
        host_id in 0u64..500,
        ref_seconds in 10.0f64..1e6,
        frac in 0.01f64..1.0,
    ) {
        let params = gridsim::HostParams::wcg_2007();
        let mut host = gridsim::Host::sample(gridsim::HostId(host_id), &params, 1);
        let position = (ref_seconds * frac).max(1e-3).min(ref_seconds);
        let exec = host.plan_execution(ref_seconds, position);
        prop_assert!(exec.accounted_seconds >= ref_seconds / host.speed * host.throttle * 0.9);
        prop_assert!(exec.turnaround_seconds >= exec.accounted_seconds);
        prop_assert!(exec.cpu_seconds >= ref_seconds / host.speed - 1e-6);
        // Replay can at most double the CPU need.
        prop_assert!(exec.cpu_seconds <= 2.0 * ref_seconds / host.speed + 1e-6);
    }
}

/// A 2-orientation chunk file for merge tests.
fn make_chunk(isep_start: u32, isep_end: u32) -> ResultFile {
    ResultFile {
        receptor: maxdo::ProteinId(0),
        ligand: maxdo::ProteinId(1),
        isep_start,
        isep_end,
        nrot: 2,
        rows: (isep_start..=isep_end)
            .flat_map(|isep| {
                (1..=2u32).map(move |irot| maxdo::DockingRow {
                    isep,
                    irot,
                    position: maxdo::Vec3::new(1.0, 0.0, 0.0),
                    orientation: maxdo::EulerZyz::default(),
                    elj: -1.0,
                    eelec: 0.0,
                })
            })
            .collect(),
    }
}

/// Replays one randomized schedule/pop interleaving on engine `S` and
/// returns the full pop sequence (time bits + payload).
///
/// Each op schedules one event whose delay class covers every tier of
/// the timing wheel — same-timestamp ties (class 0), sub-tick offsets,
/// near-wheel seconds, day-scale coarse windows, 20-day deadlines, and
/// far-future spills — and pops whenever `pop_gate == 0`, so drains
/// interleave with inserts at every depth.
fn replay_engine<S: gridsim::Scheduler<u32>>(ops: &[(u8, u8)]) -> Vec<(u64, u32)> {
    let mut q = S::default();
    let mut out = Vec::new();
    for (i, &(delay_class, pop_gate)) in ops.iter().enumerate() {
        let delay = match delay_class {
            0 => 0.0,
            1 => 0.25 + i as f64 * 1e-3,
            2 => (i % 97) as f64,
            3 => 86_400.0 + (i % 11) as f64 * 3600.0,
            4 => 20.0 * 86_400.0,
            _ => (400.0 + (i % 5) as f64 * 300.0) * 86_400.0,
        };
        q.schedule_in(delay, i as u32);
        if pop_gate == 0 {
            if let Some((t, e)) = q.pop() {
                out.push((t.seconds().to_bits(), e));
            }
        }
    }
    while let Some((t, e)) = q.pop() {
        out.push((t.seconds().to_bits(), e));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The timing wheel pops exactly what a reference binary heap pops,
    /// in exactly the same order, for any schedule/pop interleaving.
    #[test]
    fn timing_wheel_matches_heap_reference(
        ops in proptest::collection::vec((0u8..6, 0u8..4), 1..250),
    ) {
        let wheel = replay_engine::<gridsim::EventQueue<u32>>(&ops);
        let heap = replay_engine::<gridsim::HeapQueue<u32>>(&ops);
        prop_assert_eq!(wheel, heap);
    }
}

//! Failure-injection tests: the volunteer grid's fault-tolerance
//! machinery under pathological populations.
//!
//! §1 frames the whole exercise: "this performance comes at a cost, the
//! volatility of the nodes that leads to use of fault tolerance
//! algorithms". These tests drive the simulator into the corners —
//! abandon storms, error storms, absurd deadlines — and check that the
//! mechanisms (deadline/reissue, redundant computing, validation) degrade
//! gracefully instead of stalling, looping or corrupting accounting.

use gridsim::{
    HostParams, MembershipModel, ProjectPhases, SeasonalityModel, ServerConfig, SharePhase,
    VolunteerGridConfig, VolunteerGridSim,
};
use maxdo::{CostModel, LibraryConfig, ProteinLibrary};
use timemodel::CostMatrix;
use workunit::CampaignPackage;

fn base_config(host_params: HostParams, max_days: usize) -> VolunteerGridConfig {
    VolunteerGridConfig {
        seed: 1234,
        host_params,
        server: ServerConfig {
            validation_switch_day: Some(0),
            deadline_seconds: 3.0 * 86_400.0,
            feeder: None,
        },
        membership: MembershipModel {
            reference_vftp: 30.0,
            reference_day: 1,
            growth_exponent: 0.0,
            seasonality: SeasonalityModel::flat(),
            mean_accounted_fraction: 0.5,
        },
        phases: ProjectPhases::new(vec![SharePhase {
            start_day: 0,
            share_start: 1.0,
            share_end: 1.0,
            days: 10 * 365,
            name: "full",
        }]),
        scale_divisor: 1,
        snapshot_days: vec![],
        max_days,
        membership_start_day: 0,
        detailed_sessions: false,
    }
}

fn small_workload() -> (ProteinLibrary, CostMatrix) {
    let lib = ProteinLibrary::generate(LibraryConfig::tiny(3), 17);
    let m = CostMatrix::from_cost_model(&lib, &CostModel::with_kappa(0.3));
    (lib, m)
}

#[test]
fn abandon_storm_stalls_but_terminates_cleanly() {
    // Every replica is silently abandoned: no result ever returns. The
    // deadline keeps reissuing, the population keeps being replenished,
    // and the simulation must still terminate at the horizon with a
    // consistent (empty) trace.
    let (lib, m) = small_workload();
    let pkg = CampaignPackage::new(&lib, &m, 2.0 * 3600.0);
    let params = HostParams {
        abandon_rate: 1.0,
        ..HostParams::wcg_2007()
    };
    let trace = VolunteerGridSim::new(&pkg, base_config(params, 30)).run();
    assert!(trace.completion_day.is_none(), "nothing can complete");
    assert_eq!(trace.results_received, 0);
    assert_eq!(trace.results_useful, 0);
    assert_eq!(trace.consumed_cpu_seconds(), 0.0);
}

#[test]
fn error_storm_never_validates_but_accounting_stays_consistent() {
    // Every result is erroneous: the bounds-check validator rejects all of
    // them and reissues forever. The horizon guard must end the run, with
    // every received result counted and none useful.
    let (lib, m) = small_workload();
    let pkg = CampaignPackage::new(&lib, &m, 2.0 * 3600.0);
    let params = HostParams {
        error_rate: 1.0,
        ..HostParams::wcg_2007()
    };
    let trace = VolunteerGridSim::new(&pkg, base_config(params, 20)).run();
    assert!(trace.completion_day.is_none());
    assert!(trace.results_received > 0, "errors are still received");
    assert_eq!(trace.results_useful, 0);
    assert_eq!(trace.realized_runtimes.len() as u64, trace.results_received);
    // Erroneous work still burned CPU — the §5.1 cost of volatility.
    assert!(trace.consumed_cpu_seconds() > 0.0);
}

#[test]
fn half_error_population_still_finishes() {
    // A 50 % error rate doubles the needed results but must not stall.
    let (lib, m) = small_workload();
    let pkg = CampaignPackage::new(&lib, &m, 2.0 * 3600.0);
    let params = HostParams {
        error_rate: 0.5,
        ..HostParams::wcg_2007()
    };
    let trace = VolunteerGridSim::new(&pkg, base_config(params, 365)).run();
    assert!(
        trace.completion_day.is_some(),
        "50% errors must be survivable"
    );
    assert!(
        trace.redundancy_factor() > 1.7,
        "error replicas should show up as redundancy: {}",
        trace.redundancy_factor()
    );
}

#[test]
fn absurdly_short_deadline_completes_through_late_results() {
    // A 2-hour deadline on multi-day turnarounds: everything times out and
    // is reissued, but §5.1's rule — late results are still "taken into
    // account" when they arrive first — lets the campaign finish, at a
    // spectacular redundancy factor.
    let (lib, m) = small_workload();
    let pkg = CampaignPackage::new(&lib, &m, 2.0 * 3600.0);
    let mut config = base_config(HostParams::wcg_2007(), 365);
    config.server.deadline_seconds = 2.0 * 3600.0;
    let trace = VolunteerGridSim::new(&pkg, config).run();
    assert!(
        trace.completion_day.is_some(),
        "late results must complete it"
    );
    assert!(
        trace.redundancy_factor() > 1.3,
        "timeout reissues should inflate redundancy: {}",
        trace.redundancy_factor()
    );
}

#[test]
fn tiny_population_grinds_through_eventually() {
    // Two hosts and a real workload: slow, but the queue discipline must
    // deliver every workunit exactly once as useful.
    let (lib, m) = small_workload();
    let pkg = CampaignPackage::new(&lib, &m, 2.0 * 3600.0);
    let mut config = base_config(HostParams::wcg_2007(), 3 * 365);
    config.membership.reference_vftp = 1.0; // ~2 devices
    let trace = VolunteerGridSim::new(&pkg, config).run();
    if let Some(_day) = trace.completion_day {
        assert_eq!(trace.results_useful, pkg.count());
    } else {
        // Even unfinished, accounting must be consistent.
        assert!(trace.results_useful < pkg.count());
    }
    assert!(trace.results_received >= trace.results_useful);
}

#[test]
fn perfect_population_has_minimal_overhead() {
    // Dedicated-grade hosts with bounds-check validation from day 0: no
    // errors, no abandons, no throttle ⇒ redundancy exactly 1 and raw
    // speed-down ≈ 1.
    let (lib, m) = small_workload();
    let pkg = CampaignPackage::new(&lib, &m, 2.0 * 3600.0);
    let trace = VolunteerGridSim::new(
        &pkg,
        base_config(HostParams::dedicated_reference(), 3 * 365),
    )
    .run();
    assert!(trace.completion_day.is_some());
    assert!((trace.redundancy_factor() - 1.0).abs() < 1e-9);
    let sd = trace.speed_down();
    assert!(
        (sd.raw_factor() - 1.0).abs() < 0.01,
        "dedicated hosts should account ≈ the reference time: {}",
        sd.raw_factor()
    );
}

//! Telemetry pairing over a live wire-level run (requires
//! `--features telemetry`; the whole file compiles away without it).
//!
//! Regression: a connection turned away with `Busy` used to emit
//! `ConnectionClosed { agent: 0, reason: "server-full" }` without a
//! matching `ConnectionOpened`, so the open/close pairing in the event
//! log never balanced. Rejections now get their own
//! `ConnectionRejected` event and the pairing must be exact.
//!
//! The JSONL sink is process-global, so this binary holds exactly one
//! test function.
#![cfg(feature = "telemetry")]

use netgrid::{run_agent, AgentConfig, Message, NetServer, NetServerConfig};
use std::thread;
use std::time::Duration;
use telemetry::{Event, Record};

#[test]
fn busy_rejections_keep_open_close_pairing_exact() {
    let log = std::env::temp_dir().join(format!("hcmd-events-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&log);
    telemetry::install_jsonl(&log).expect("event log opens");

    // One slot; a single honest volunteer holds it for the whole
    // campaign and a raw probe draws `Busy` while it runs.
    let mut config = NetServerConfig {
        sweep_ms: 25,
        ..NetServerConfig::loopback(8.0)
    };
    config.faults.max_connections = 1;
    let server = NetServer::bind(config).expect("bind loopback");
    let addr = server.local_addr().expect("local addr").to_string();
    let server = thread::spawn(move || server.run());
    let agent = {
        let addr = addr.clone();
        thread::spawn(move || run_agent(AgentConfig::new(addr, 1)))
    };

    thread::sleep(Duration::from_millis(250));
    let mut probe = std::net::TcpStream::connect(&addr).expect("probe connects");
    match netgrid::protocol::read_message(&mut probe) {
        Ok(Some(Message::Busy { .. })) => {}
        other => panic!("expected Busy at the connection limit, got {other:?}"),
    }
    drop(probe);

    agent.join().unwrap().expect("honest agent ran");
    let report = server.join().unwrap().expect("server ran");
    assert_eq!(report.rejected_connections, 1, "{report:?}");
    telemetry::shutdown();

    let text = std::fs::read_to_string(&log).expect("event log written");
    let mut opened = 0u64;
    let mut closed = 0u64;
    let mut rejected = 0u64;
    for line in text.lines() {
        let record: Record = serde_json::from_str(line).expect("event log line parses");
        match record.event {
            Event::ConnectionOpened { .. } => opened += 1,
            Event::ConnectionClosed { reason, .. } => {
                assert_ne!(
                    reason, "server-full",
                    "rejections must not masquerade as closes"
                );
                closed += 1;
            }
            Event::ConnectionRejected { retry_after_ms } => {
                assert!(retry_after_ms > 0);
                rejected += 1;
            }
            _ => {}
        }
    }
    assert!(opened >= 1, "the honest agent's session must be logged");
    assert_eq!(
        opened, closed,
        "every ConnectionOpened pairs with exactly one ConnectionClosed"
    );
    assert_eq!(rejected, 1, "the probe is logged as a rejection");
    let _ = std::fs::remove_file(&log);
}

//! Serialization into the [`Value`] tree.

use crate::value::Value;

/// A type that can render itself as a [`Value`].
pub trait Serialize {
    /// Builds the value tree.
    fn to_value(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 { Value::I64(v as i64) } else { Value::U64(v) }
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as f64;
                // serde_json renders non-finite floats as null.
                if v.is_finite() { Value::F64(v) } else { Value::Null }
            }
        }
    )*};
}
ser_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

//! Minimal in-repo stand-in for `serde`.
//!
//! The container builds offline, so the workspace vendors the slice of
//! serde it needs. Instead of serde's visitor-based data model, this stub
//! round-trips through an owned [`Value`] tree:
//!
//! * [`Serialize`] renders a type into a [`Value`];
//! * [`Deserialize`] rebuilds a type from a [`Value`];
//! * `vendor/serde_json` prints/parses `Value` as JSON text.
//!
//! The derive macros (feature `derive`, crate `vendor/serde_derive`)
//! generate both impls for plain structs (named, tuple, unit) and enums
//! (unit, tuple and struct variants, externally tagged) — the only shapes
//! the workspace uses. Field attributes (`#[serde(...)]`) are not
//! supported; no workspace type uses them.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Error as DeError};
pub use ser::Serialize;
pub use value::Value;

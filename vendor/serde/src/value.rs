//! The owned tree every type serializes through.

/// A JSON-shaped value tree.
///
/// Maps preserve insertion order (struct field order), which keeps the
/// JSON output stable and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer too large for `i64`.
    U64(u64),
    /// A float (finite; non-finite floats serialize as `Null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(x) => Some(x as f64),
            Value::U64(x) => Some(x as f64),
            Value::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(x) if x >= 0 => Some(x as u64),
            Value::U64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as an `i64` if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(x) => Some(x),
            Value::U64(x) if x <= i64::MAX as u64 => Some(x as i64),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

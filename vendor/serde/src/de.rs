//! Deserialization from the [`Value`] tree.

use crate::value::Value;
use std::fmt;

/// A deserialization failure: what was expected, what was found.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    /// Builds an error with a custom message.
    pub fn custom(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The standard "expected X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        Self::custom(format!("expected {what}, found {}", found.kind()))
    }

    /// A missing struct field.
    pub fn missing_field(name: &str) -> Self {
        Self::custom(format!("missing field `{name}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// A type that can rebuild itself from a [`Value`].
pub trait Deserialize: Sized {
    /// Parses the value tree.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let out = match *value {
                    Value::I64(x) => <$t>::try_from(x).ok(),
                    Value::U64(x) => <$t>::try_from(x).ok(),
                    // Integral floats round-trip through JSON parsers that
                    // read `1.0` as a float; accept them when exact.
                    Value::F64(x) if x.fract() == 0.0
                        && x >= <$t>::MIN as f64 && x <= <$t>::MAX as f64 =>
                        Some(x as $t),
                    _ => None,
                };
                out.ok_or_else(|| Error::expected(stringify!($t), value))
            }
        }
    )*};
}
de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::expected("number", value))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", value)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::expected("string", value))
    }
}

impl Deserialize for &'static str {
    /// Strings cannot borrow from a transient value tree, and the
    /// workspace has `&'static str` fields (phase names). Leak the parsed
    /// string: deserialization of such types happens a bounded number of
    /// times (configs, test round-trips), never in a loop.
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Box::leak(String::from_value(value)?.into_boxed_str()))
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::expected("array", value)),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<T: Deserialize> Deserialize for std::collections::VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(Vec::<T>::from_value(value)?.into())
    }
}

macro_rules! de_tuple {
    ($(($($name:ident : $idx:tt),+ ; $len:expr))*) => {$(
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    _ => Err(Error::expected(
                        concat!("array of length ", stringify!($len)),
                        value,
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (A: 0; 1)
    (A: 0, B: 1; 2)
    (A: 0, B: 1, C: 2; 3)
    (A: 0, B: 1, C: 2, D: 3; 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ser::Serialize;

    #[test]
    fn primitives_round_trip() {
        for v in [0u64, 7, u64::MAX] {
            assert_eq!(u64::from_value(&v.to_value()).unwrap(), v);
        }
        assert_eq!(f64::from_value(&3.5f64.to_value()).unwrap(), 3.5);
        assert_eq!(bool::from_value(&true.to_value()).unwrap(), true);
        let s = "hi".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
    }

    #[test]
    fn integral_floats_coerce_to_ints() {
        assert_eq!(u32::from_value(&Value::F64(12.0)).unwrap(), 12);
        assert!(u32::from_value(&Value::F64(12.5)).is_err());
    }

    #[test]
    fn options_and_vecs() {
        let v: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&v.to_value()).unwrap(), None);
        let xs = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&xs.to_value()).unwrap(), xs);
    }

    #[test]
    fn out_of_range_integer_fails() {
        assert!(u8::from_value(&Value::I64(300)).is_err());
        assert!(u32::from_value(&Value::I64(-1)).is_err());
    }
}

//! In-repo stand-in for the slice of `crossbeam` the workspace uses:
//! scoped threads ([`scope`]) and an unbounded MPMC channel
//! ([`channel::unbounded`]). Built on `std::thread::scope` plus a
//! `Mutex<VecDeque>` + `Condvar` queue — real threads, real parallelism,
//! just without crossbeam's lock-free internals.

use std::marker::PhantomData;

/// Scoped-thread handle mirroring `crossbeam::thread::Scope`.
///
/// Wraps `std::thread::Scope`; the spawn closure receives `&Scope` so
/// call sites written for crossbeam (`scope.spawn(move |_| ...)`)
/// compile unchanged.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle mirroring `crossbeam::thread::ScopedJoinHandle`.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
    _marker: PhantomData<&'scope ()>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result, or the panic payload.
    pub fn join(self) -> std::thread::Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure's `&Scope` argument allows
    /// nested spawns, matching crossbeam's signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner_scope = self.inner;
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(&Scope { inner: inner_scope })),
            _marker: PhantomData,
        }
    }
}

/// Creates a scope for spawning threads that may borrow from the caller's
/// stack. Mirrors `crossbeam::scope`: returns `Ok(r)` with the closure's
/// result, or `Err` with a panic payload if any spawned thread panicked
/// without being joined. (With `std::thread::scope` underneath, an
/// unjoined panicking thread propagates at scope exit; explicit `join()`
/// failures surface through the handle exactly as in crossbeam.)
pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

/// Re-export position matching `crossbeam::thread`.
pub mod thread {
    pub use super::{scope, Scope, ScopedJoinHandle};
}

/// MPMC channels mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        ready: Condvar,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
    }

    /// The sending half; clonable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; clonable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error from [`Sender::send`] when all receivers are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error from [`Receiver::recv`] when the channel is empty and all
    /// senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a message; never blocks (unbounded).
        pub fn send(&self, item: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.queue.lock().unwrap();
            state.items.push_back(item);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.queue.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut state = self.shared.queue.lock().unwrap();
                state.senders -= 1;
                state.senders
            };
            if remaining == 0 {
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors once the channel is
        /// empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.queue.lock().unwrap();
            loop {
                if let Some(item) = state.items.pop_front() {
                    return Ok(item);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).unwrap();
            }
        }

        /// Non-blocking receive; `None` when currently empty.
        pub fn try_recv(&self) -> Option<T> {
            self.shared.queue.lock().unwrap().items.pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Iterator for Receiver<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.recv().ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_spawns_and_joins() {
        let data = vec![1u32, 2, 3];
        let total = scope(|s| {
            let h1 = s.spawn(|_| data.iter().sum::<u32>());
            let h2 = s.spawn(|_| data.len() as u32);
            h1.join().unwrap() + h2.join().unwrap()
        })
        .unwrap();
        assert_eq!(total, 9);
    }

    #[test]
    fn channel_drains_across_workers() {
        let (tx, rx) = channel::unbounded::<usize>();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let seen = scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    s.spawn(move |_| {
                        let mut mine = Vec::new();
                        while let Ok(i) = rx.recv() {
                            mine.push(i);
                        }
                        mine
                    })
                })
                .collect();
            let mut all: Vec<usize> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_unstable();
            all
        })
        .unwrap();
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = channel::unbounded::<u8>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert!(rx.recv().is_err());
    }
}

//! Sequence helpers (`choose`, `shuffle`).

use crate::{Rng, RngCore};

/// Slice extensions mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// A uniformly random element, or `None` on an empty slice.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, rng.gen_range(0..=i));
        }
    }
}

//! Named generators: a small deterministic `StdRng` stand-in.

use crate::{RngCore, SeedableRng};

/// A deterministic 64-bit generator (SplitMix64-permuted xorshift).
///
/// NOT the real `StdRng` algorithm — only the trait surface. Present so
/// callers that ask for "some seeded generator" have one without pulling
/// in ChaCha.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let n = rest.len();
            rest.copy_from_slice(&self.next_u64().to_le_bytes()[..n]);
        }
    }
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = 0u64;
        for chunk in seed.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            state ^= u64::from_le_bytes(word).rotate_left(17);
        }
        Self { state }
    }
}

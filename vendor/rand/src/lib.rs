//! Minimal in-repo stand-in for the `rand` crate.
//!
//! This container builds fully offline, so the workspace vendors the small
//! slice of the `rand` 0.8 API it actually uses: the [`RngCore`] /
//! [`SeedableRng`] traits, the [`Rng`] extension trait with `gen`,
//! `gen_range` and `gen_bool`, and the `Standard` distribution for the
//! primitive types. Value streams match `rand` 0.8 bit-for-bit for the
//! conversions implemented here (`f64`/`f32` use the 53-/24-bit
//! multiply-based uniform in `[0, 1)`), so simulations calibrated against
//! the real crate reproduce identically with a faithful `RngCore`
//! implementation underneath (see `vendor/rand_chacha`).

pub mod distributions;
pub mod rngs;
pub mod seq;

pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of random words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Derives a full seed from a `u64` via SplitMix64, matching
    /// `rand_core`'s implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 (same constants as rand_core 0.6).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Convenience methods on any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

//! The `Standard` distribution and uniform range sampling.

use crate::RngCore;

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, the full range for integers).
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // rand 0.8's multiply-based conversion: 53 significant bits.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

pub mod uniform {
    //! Range sampling for `Rng::gen_range`.

    use crate::RngCore;

    /// A range that can produce a uniform sample of `T`.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Widening-multiply rejection-free approximation: the
                    // simulator's ranges are tiny next to 2^64, so modulo
                    // bias is negligible for a stub.
                    let draw = (rng.next_u64() as u128 * span) >> 64;
                    (self.start as i128 + draw as i128) as $t
                }
            }
            impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range");
                    let span = (e as i128 - s as i128) as u128 + 1;
                    let draw = (rng.next_u64() as u128 * span) >> 64;
                    (s as i128 + draw as i128) as $t
                }
            }
        )*};
    }
    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_ranges {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for std::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let unit: f64 =
                        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    self.start + (self.end - self.start) * unit as $t
                }
            }
        )*};
    }
    float_ranges!(f32, f64);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixed(u64);
    impl RngCore for Fixed {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for b in dest {
                *b = self.next_u64() as u8;
            }
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = Fixed(7);
        for _ in 0..1000 {
            let x: f64 = Standard.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        use crate::Rng;
        let mut rng = Fixed(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5..10u32);
            assert!((5..10).contains(&x));
        }
    }
}

//! Multicore stand-in for `rayon`'s parallel iterator API.
//!
//! The container builds offline, so the workspace vendors the slice of
//! rayon it calls — but unlike the other stand-ins this one is a *real*
//! parallel executor: a lazily initialised, process-wide thread pool
//! ([`mod@pool`]) drives order-preserving chunked execution of
//! `par_iter()` / `into_par_iter()` pipelines ([`mod@iter`]).
//!
//! Guarantees the workspace's determinism tests pin down:
//!
//! * `collect()` output is **bit-identical** to a sequential run — the
//!   chunk decomposition preserves source order.
//! * Results are **independent of the thread count**: chunking is a
//!   pure function of the input length, so `HCMD_THREADS=1` and
//!   `HCMD_THREADS=64` produce the same bytes (including float `sum`,
//!   which folds chunk partials in a fixed order).
//!
//! Thread count: `HCMD_THREADS` overrides `RAYON_NUM_THREADS` overrides
//! `std::thread::available_parallelism()`. [`with_threads`] pins the
//! count for one closure (used by the bench thread-sweep and the
//! determinism tests).

pub mod iter;
mod pool;

pub use pool::{current_num_threads, with_threads};

pub mod prelude {
    //! Traits that make `.par_iter()` / `.into_par_iter()` and the
    //! adapter/terminal methods available, mirroring `rayon::prelude`.
    pub use crate::iter::{
        FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![1u32, 2, 3, 4];
        let a: u32 = xs.par_iter().map(|x| x * x).sum();
        let b: u32 = xs.iter().map(|x| x * x).sum();
        assert_eq!(a, b);
    }

    #[test]
    fn into_par_iter_on_range() {
        let total: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn into_par_iter_on_inclusive_range() {
        let items: Vec<u32> = (1..=21u32).into_par_iter().collect();
        assert_eq!(items, (1..=21).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_and_reversed_ranges() {
        assert_eq!((5..5usize).into_par_iter().count(), 0);
        assert_eq!((5..2usize).into_par_iter().count(), 0);
        #[allow(clippy::reversed_empty_ranges)]
        let rev = (5..=2u32).into_par_iter().count();
        assert_eq!(rev, 0);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let out: Vec<u32> = vec![1u32, 2]
            .par_iter()
            .flat_map_iter(|&x| vec![x, x * 10])
            .collect();
        assert_eq!(out, vec![1, 10, 2, 20]);
    }

    #[test]
    fn collect_preserves_order_for_large_inputs() {
        // More items than chunks × threads: exercises splitting, the
        // pool, and ordered recombination.
        let n = 10_000u64;
        let squares: Vec<u64> = (0..n).into_par_iter().map(|x| x * x).collect();
        let expect: Vec<u64> = (0..n).map(|x| x * x).collect();
        assert_eq!(squares, expect);
    }

    #[test]
    fn vec_into_par_iter_consumes_in_order() {
        let v: Vec<String> = (0..500).map(|i| format!("item-{i}")).collect();
        let out: Vec<usize> = v.into_par_iter().map(|s| s.len()).collect();
        let expect: Vec<usize> = (0..500).map(|i| format!("item-{i}").len()).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn results_are_thread_count_independent() {
        // Float sum is order-sensitive: identical bits across thread
        // counts proves chunking never depends on parallelism.
        let xs: Vec<f64> = (0..5000).map(|i| (i as f64).sin()).collect();
        let sums: Vec<f64> = [1, 2, 3, 8]
            .iter()
            .map(|&t| crate::with_threads(t, || xs.par_iter().map(|x| x * 1.5).sum::<f64>()))
            .collect();
        assert!(sums.windows(2).all(|w| w[0].to_bits() == w[1].to_bits()));

        let collected_1 = crate::with_threads(1, || {
            (0..999u32)
                .into_par_iter()
                .map(|x| x as f64 / 7.0)
                .collect::<Vec<f64>>()
        });
        let collected_8 = crate::with_threads(8, || {
            (0..999u32)
                .into_par_iter()
                .map(|x| x as f64 / 7.0)
                .collect::<Vec<f64>>()
        });
        assert_eq!(collected_1, collected_8);
    }

    #[test]
    fn for_each_visits_everything() {
        let hits = std::sync::atomic::AtomicUsize::new(0);
        (0..1000u32).into_par_iter().for_each(|_| {
            hits.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        });
        assert_eq!(hits.load(std::sync::atomic::Ordering::SeqCst), 1000);
    }

    #[test]
    fn map_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            (0..100u32)
                .into_par_iter()
                .map(|x| {
                    assert!(x != 50, "injected failure");
                    x
                })
                .collect::<Vec<u32>>()
        });
        assert!(result.is_err());
    }
}

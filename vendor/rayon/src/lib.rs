//! Sequential stand-in for `rayon`'s parallel iterator API.
//!
//! The container builds offline, so the workspace vendors the slice of
//! rayon it calls. `par_iter()` / `into_par_iter()` hand back the plain
//! sequential iterator; `flat_map_iter` aliases `flat_map`. Results are
//! bit-identical to real rayon for the workspace's order-insensitive
//! reductions — only wall-clock parallel speedup is absent.

pub mod prelude {
    /// `slice.par_iter()` — sequential `slice::Iter` under the hood.
    pub trait IntoParallelRefIterator<'data> {
        /// Item type of the iterator.
        type Item: 'data;
        /// The stand-in "parallel" iterator.
        type Iter: Iterator<Item = Self::Item>;
        /// Returns the sequential iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// `x.into_par_iter()` for anything iterable (ranges, vecs, ...).
    pub trait IntoParallelIterator {
        /// Item type of the iterator.
        type Item;
        /// The stand-in "parallel" iterator.
        type Iter: Iterator<Item = Self::Item>;
        /// Consumes `self` into the sequential iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }

    /// Rayon-only iterator adapters the workspace uses.
    pub trait ParallelIteratorExt: Iterator + Sized {
        /// Rayon's `flat_map_iter` (flat-map with a sequential inner
        /// iterator) — identical to `flat_map` here.
        fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
        where
            U: IntoIterator,
            F: FnMut(Self::Item) -> U,
        {
            self.flat_map(f)
        }
    }

    impl<I: Iterator> ParallelIteratorExt for I {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_matches_iter() {
        let xs = vec![1u32, 2, 3, 4];
        let a: u32 = xs.par_iter().map(|x| x * x).sum();
        let b: u32 = xs.iter().map(|x| x * x).sum();
        assert_eq!(a, b);
    }

    #[test]
    fn into_par_iter_on_range() {
        let total: usize = (0..10usize).into_par_iter().sum();
        assert_eq!(total, 45);
    }

    #[test]
    fn flat_map_iter_flattens() {
        let out: Vec<u32> = vec![1u32, 2]
            .par_iter()
            .flat_map_iter(|&x| vec![x, x * 10])
            .collect();
        assert_eq!(out, vec![1, 10, 2, 20]);
    }
}

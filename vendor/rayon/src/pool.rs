//! The shared thread pool behind the parallel iterators.
//!
//! A lazily initialised, process-wide pool of detached worker threads
//! plus a queue of *batches*. A batch is a shared `Fn(usize)` job and a
//! claim counter over `total` indices: the submitting thread and up to
//! `threads - 1` workers race to claim indices with one `fetch_add`
//! each, execute them, and the submitter blocks until every index has
//! completed. Claiming from a shared atomic counter gives the same
//! self-balancing behaviour as a work-stealing deque for the chunk
//! granularities the iterator layer produces (at most
//! [`crate::iter::MAX_CHUNKS`] chunks per operation) without any unsafe
//! queue code — the only `unsafe` is the lifetime erasure of the
//! borrowed job pointer, which is sound because the submitter cannot
//! return before the completion count reaches `total`.
//!
//! Thread count resolution, in order: `HCMD_THREADS`, then
//! `RAYON_NUM_THREADS`, then `std::thread::available_parallelism()`.
//! [`with_threads`] overrides the count for one closure on the calling
//! thread (the pool grows on demand, so a test can force 8-way
//! execution even on a single-core host).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// The erased job type as stored in a [`Batch`] (lifetime already
/// erased to `'static`); submission APIs take a borrowed
/// `&(dyn Fn(usize) + Sync)` instead, so jobs may capture the stack.
type Job = dyn Fn(usize) + Sync;

/// One submitted parallel operation: a job, a claim counter over
/// `0..total`, and completion tracking.
struct Batch {
    /// Lifetime-erased pointer to the submitter's job closure. Only
    /// dereferenced for indices `< total`, all of which complete before
    /// the submitter (who owns the referent) is allowed to return.
    job: *const Job,
    /// Next unclaimed index; claims at or past `total` are no-ops.
    next: AtomicUsize,
    total: usize,
    /// Remaining worker-thread participation slots (the submitter
    /// always participates and is not counted here).
    worker_slots: AtomicIsize,
    /// Number of indices fully executed, guarded for the completion wait.
    completed: Mutex<usize>,
    done: Condvar,
    panicked: AtomicBool,
}

// SAFETY: `job` points at a `Sync` closure that outlives every
// dereference (see `Pool::run_batch`); all other fields are Sync.
unsafe impl Send for Batch {}
unsafe impl Sync for Batch {}

impl Batch {
    fn has_work(&self) -> bool {
        self.next.load(Ordering::Relaxed) < self.total
    }

    /// Tries to reserve a worker participation slot.
    fn try_reserve_worker(&self) -> bool {
        if self.worker_slots.fetch_sub(1, Ordering::AcqRel) > 0 {
            true
        } else {
            self.worker_slots.fetch_add(1, Ordering::AcqRel);
            false
        }
    }

    /// Claims and runs indices until the batch is exhausted.
    fn run_claimed(&self) {
        loop {
            let index = self.next.fetch_add(1, Ordering::Relaxed);
            if index >= self.total {
                return;
            }
            // SAFETY: `index < total`, so the submitter is still blocked
            // in `run_batch` and the job closure it borrows is alive.
            let job = unsafe { &*self.job };
            if catch_unwind(AssertUnwindSafe(|| job(index))).is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
            let mut completed = self.completed.lock().unwrap();
            *completed += 1;
            if *completed == self.total {
                self.done.notify_all();
            }
        }
    }

    /// Blocks until every index has finished executing.
    fn wait(&self) {
        let mut completed = self.completed.lock().unwrap();
        while *completed < self.total {
            completed = self.done.wait(completed).unwrap();
        }
    }
}

struct Shared {
    queue: Mutex<VecDeque<Arc<Batch>>>,
    work_ready: Condvar,
}

/// The process-wide pool.
pub(crate) struct Pool {
    shared: Arc<Shared>,
    default_threads: usize,
    /// Workers spawned so far; grows on demand up to the largest thread
    /// count ever requested minus one (the submitter participates).
    workers_spawned: Mutex<usize>,
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let batch = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                queue.retain(|b| b.has_work());
                if let Some(batch) = queue.iter().find(|b| b.try_reserve_worker()) {
                    break Arc::clone(batch);
                }
                queue = shared.work_ready.wait(queue).unwrap();
            }
        };
        batch.run_claimed();
    }
}

impl Pool {
    fn new(default_threads: usize) -> Self {
        Self {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                work_ready: Condvar::new(),
            }),
            default_threads,
            workers_spawned: Mutex::new(0),
        }
    }

    /// Spawns detached workers until at least `target` exist.
    fn ensure_workers(&self, target: usize) {
        let mut spawned = self.workers_spawned.lock().unwrap();
        while *spawned < target {
            let shared = Arc::clone(&self.shared);
            std::thread::Builder::new()
                .name(format!("hcmd-rayon-{spawned}"))
                .spawn(move || worker_loop(shared))
                .expect("failed to spawn pool worker");
            *spawned += 1;
        }
    }

    /// Runs `job(0..total)` on up to `threads` threads (submitter
    /// included), returning once every index has completed.
    ///
    /// # Panics
    /// Re-raises (as a fresh panic) if any job index panicked.
    pub(crate) fn run_batch(&self, total: usize, threads: usize, job: &(dyn Fn(usize) + Sync)) {
        let threads = threads.max(1).min(total.max(1));
        if threads == 1 {
            // Inline sequential execution: identical results (the
            // iterator layer's chunking is thread-count-independent),
            // zero synchronisation.
            for index in 0..total {
                job(index);
            }
            return;
        }
        self.ensure_workers(threads - 1);
        let batch = Arc::new(Batch {
            // SAFETY (lifetime erasure): the pointer is dereferenced
            // only by `run_claimed` for indices `< total`; `wait()`
            // below does not return until all of them have completed,
            // so `job` strictly outlives every dereference.
            job: unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), *const Job>(job) },
            next: AtomicUsize::new(0),
            total,
            worker_slots: AtomicIsize::new((threads - 1) as isize),
            completed: Mutex::new(0),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        self.shared
            .queue
            .lock()
            .unwrap()
            .push_back(Arc::clone(&batch));
        self.shared.work_ready.notify_all();
        batch.run_claimed();
        batch.wait();
        if batch.panicked.load(Ordering::SeqCst) {
            panic!("a parallel job panicked (see worker backtrace above)");
        }
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn configured_default_threads() -> usize {
    for key in ["HCMD_THREADS", "RAYON_NUM_THREADS"] {
        if let Ok(value) = std::env::var(key) {
            if let Ok(n) = value.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

pub(crate) fn global() -> &'static Pool {
    POOL.get_or_init(|| Pool::new(configured_default_threads()))
}

thread_local! {
    static THREAD_LIMIT: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
}

/// The number of threads parallel operations on this thread will use:
/// the innermost [`with_threads`] override, else the configured default
/// (`HCMD_THREADS` / `RAYON_NUM_THREADS` / available parallelism).
pub fn current_num_threads() -> usize {
    THREAD_LIMIT
        .with(std::cell::Cell::get)
        .unwrap_or_else(|| global().default_threads)
}

/// Runs `f` with parallel operations *started on this thread* limited
/// to (or raised to) `threads` threads. The pool grows on demand, so a
/// larger-than-default count forces genuinely concurrent execution even
/// on hosts with fewer cores — results are identical either way because
/// chunking never depends on the thread count.
///
/// # Panics
/// Panics if `threads` is zero.
pub fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    assert!(threads >= 1, "need at least one thread");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_LIMIT.with(|limit| limit.set(self.0));
        }
    }
    let _restore = Restore(THREAD_LIMIT.with(|limit| limit.replace(Some(threads))));
    f()
}

/// Submits a batch of `total` jobs at the calling thread's current
/// thread count.
pub(crate) fn run(total: usize, job: &(dyn Fn(usize) + Sync)) {
    global().run_batch(total, current_num_threads(), job);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicU64> = (0..100).map(|_| AtomicU64::new(0)).collect();
        global().run_batch(100, 4, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn single_thread_runs_inline() {
        let tid = std::thread::current().id();
        global().run_batch(16, 1, &|_| {
            assert_eq!(std::thread::current().id(), tid);
        });
    }

    #[test]
    fn zero_jobs_is_a_noop() {
        global().run_batch(0, 8, &|_| panic!("no job should run"));
    }

    #[test]
    fn job_panic_propagates_and_pool_survives() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            global().run_batch(8, 4, &|i| {
                if i == 3 {
                    panic!("boom");
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate to the submitter");
        // The pool keeps working after a panicked batch.
        let count = AtomicU64::new(0);
        global().run_batch(8, 4, &|_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let default = current_num_threads();
        let inside = with_threads(3, current_num_threads);
        assert_eq!(inside, 3);
        assert_eq!(current_num_threads(), default);
        // Restores even when the closure panics.
        let _ = catch_unwind(AssertUnwindSafe(|| {
            with_threads(5, || panic!("unwind through the guard"))
        }));
        assert_eq!(current_num_threads(), default);
    }

    #[test]
    fn workers_actually_run_concurrently() {
        // Two jobs that each wait to observe the other started: this
        // can only complete if two threads execute simultaneously
        // (timeslicing included), proving the pool is not sequential.
        let started = [AtomicBool::new(false), AtomicBool::new(false)];
        global().run_batch(2, 2, &|i| {
            started[i].store(true, Ordering::SeqCst);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
            while !started[1 - i].load(Ordering::SeqCst) {
                assert!(
                    std::time::Instant::now() < deadline,
                    "peer job never started: pool is not concurrent"
                );
                std::thread::yield_now();
            }
        });
    }
}

//! Parallel iterators over indexed sources.
//!
//! The model is a simplified cut of rayon's: a [`ParallelSource`] is an
//! ordered collection that knows its length, can split a tail off, and
//! can drain itself sequentially. Adapters ([`Map`], [`FlatMapIter`])
//! wrap a source and stay sources themselves; terminal operations
//! ([`ParallelIterator::collect`], [`ParallelIterator::sum`], …) split
//! the source into chunks, fan the chunks out over the shared pool, and
//! recombine the per-chunk results **in chunk order**.
//!
//! Two properties the workspace's tests rely on:
//!
//! * **Order preservation** — `collect` concatenates chunk outputs in
//!   source order, so the result is bit-identical to a sequential run.
//! * **Thread-count independence** — the chunk decomposition is a pure
//!   function of the source length ([`MAX_CHUNKS`]), never of the
//!   thread count, so even order-sensitive reductions (float `sum`)
//!   produce identical bits with 1 thread or 64.

use crate::pool;
use std::sync::Mutex;

/// Upper bound on the number of chunks one operation fans out. Chunking
/// is `ceil(len / MAX_CHUNKS)`-sized pieces — a pure function of the
/// length, so results never depend on how many threads execute them.
pub const MAX_CHUNKS: usize = 64;

/// An ordered, splittable, drainable collection — the engine behind
/// every parallel iterator.
pub trait ParallelSource: Send + Sized {
    /// Element type.
    type Item: Send;
    /// Remaining number of items.
    fn length(&self) -> usize;
    /// Splits off the *last* `count` items into a new source, leaving
    /// the first `length() - count` in `self`.
    fn split_tail(&mut self, count: usize) -> Self;
    /// Consumes the source, yielding every item in order.
    fn drain(self, each: impl FnMut(Self::Item));
}

/// Splits `source` into order-preserving chunks, runs `run_piece` over
/// them on the pool, and returns the per-chunk results in source order.
fn execute_chunks<S, R>(source: S, run_piece: impl Fn(S) -> R + Sync) -> Vec<R>
where
    S: ParallelSource,
    R: Send,
{
    let len = source.length();
    if len == 0 {
        return Vec::new();
    }
    let piece_len = len.div_ceil(MAX_CHUNKS).max(1);
    let count = len.div_ceil(piece_len);
    if count == 1 {
        return vec![run_piece(source)];
    }
    // Split from the tail (cheap for every source), then reverse back
    // into source order. The last piece absorbs the remainder.
    let mut head = source;
    let mut tail_pieces = Vec::with_capacity(count - 1);
    for piece in (1..count).rev() {
        let size = if piece == count - 1 {
            len - piece_len * (count - 1)
        } else {
            piece_len
        };
        tail_pieces.push(head.split_tail(size));
    }
    let mut pieces: Vec<Mutex<Option<S>>> = Vec::with_capacity(count);
    pieces.push(Mutex::new(Some(head)));
    pieces.extend(tail_pieces.into_iter().rev().map(|p| Mutex::new(Some(p))));
    let results: Vec<Mutex<Option<R>>> = (0..count).map(|_| Mutex::new(None)).collect();
    pool::run(count, &|index| {
        let piece = pieces[index]
            .lock()
            .unwrap()
            .take()
            .expect("chunk claimed twice");
        *results[index].lock().unwrap() = Some(run_piece(piece));
    });
    results
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("chunk not executed"))
        .collect()
}

/// The parallel-iterator API surface: adapters plus terminal
/// operations. Implemented by [`ParIter`]; imported via the prelude.
pub trait ParallelIterator: Sized + Send {
    /// Element type.
    type Item: Send;
    /// The underlying source (implementation detail).
    type Source: ParallelSource<Item = Self::Item>;
    /// Unwraps the source (implementation detail).
    fn into_source(self) -> Self::Source;

    /// Parallel `map`. The closure is cloned per chunk, so it must be
    /// `Clone` (all capture-by-reference closures are).
    fn map<R, F>(self, f: F) -> ParIter<Map<Self::Source, F>>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Clone + Send,
    {
        ParIter {
            source: Map {
                source: self.into_source(),
                f,
            },
        }
    }

    /// Rayon's `flat_map_iter`: flat-map where the inner iterator is
    /// consumed sequentially within a chunk.
    fn flat_map_iter<U, F>(self, f: F) -> ParIter<FlatMapIter<Self::Source, F>>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Clone + Send,
    {
        ParIter {
            source: FlatMapIter {
                source: self.into_source(),
                f,
            },
        }
    }

    /// Runs `f` on every item, in parallel over chunks.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        execute_chunks(self.into_source(), |piece| piece.drain(&f));
    }

    /// Collects into `C`, preserving source order exactly.
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_source(self.into_source())
    }

    /// Sums the items. Chunk partial sums are folded in source order,
    /// so the result is identical for every thread count (for floats it
    /// may differ in rounding from a strictly sequential left fold).
    fn sum<Out>(self) -> Out
    where
        Out: Send + std::iter::Sum<Self::Item> + std::iter::Sum<Out>,
    {
        execute_chunks(self.into_source(), |piece| {
            let mut buffer = Vec::with_capacity(piece.length());
            piece.drain(|item| buffer.push(item));
            buffer.into_iter().sum::<Out>()
        })
        .into_iter()
        .sum()
    }

    /// Counts the items.
    fn count(self) -> usize {
        execute_chunks(self.into_source(), |piece| {
            let mut n = 0usize;
            piece.drain(|_| n += 1);
            n
        })
        .into_iter()
        .sum()
    }
}

/// A parallel iterator over source `S`.
pub struct ParIter<S> {
    source: S,
}

impl<S: ParallelSource> ParallelIterator for ParIter<S> {
    type Item = S::Item;
    type Source = S;
    fn into_source(self) -> S {
        self.source
    }
}

/// `map` adapter source.
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, F, R> ParallelSource for Map<S, F>
where
    S: ParallelSource,
    F: Fn(S::Item) -> R + Clone + Send,
    R: Send,
{
    type Item = R;
    fn length(&self) -> usize {
        self.source.length()
    }
    fn split_tail(&mut self, count: usize) -> Self {
        Map {
            source: self.source.split_tail(count),
            f: self.f.clone(),
        }
    }
    fn drain(self, mut each: impl FnMut(R)) {
        let f = self.f;
        self.source.drain(|item| each(f(item)));
    }
}

/// `flat_map_iter` adapter source. Its `length` is the *base* length —
/// chunking granularity — not the flattened item count.
pub struct FlatMapIter<S, F> {
    source: S,
    f: F,
}

impl<S, F, U> ParallelSource for FlatMapIter<S, F>
where
    S: ParallelSource,
    F: Fn(S::Item) -> U + Clone + Send,
    U: IntoIterator,
    U::Item: Send,
{
    type Item = U::Item;
    fn length(&self) -> usize {
        self.source.length()
    }
    fn split_tail(&mut self, count: usize) -> Self {
        FlatMapIter {
            source: self.source.split_tail(count),
            f: self.f.clone(),
        }
    }
    fn drain(self, mut each: impl FnMut(U::Item)) {
        let f = self.f;
        self.source.drain(|item| {
            for inner in f(item) {
                each(inner);
            }
        });
    }
}

/// Borrowed-slice source (`par_iter`).
pub struct SliceSource<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParallelSource for SliceSource<'data, T> {
    type Item = &'data T;
    fn length(&self) -> usize {
        self.slice.len()
    }
    fn split_tail(&mut self, count: usize) -> Self {
        let (head, tail) = self.slice.split_at(self.slice.len() - count);
        self.slice = head;
        SliceSource { slice: tail }
    }
    fn drain(self, each: impl FnMut(&'data T)) {
        self.slice.iter().for_each(each);
    }
}

/// Owned-vector source (`vec.into_par_iter()`).
pub struct VecSource<T> {
    vec: Vec<T>,
}

impl<T: Send> ParallelSource for VecSource<T> {
    type Item = T;
    fn length(&self) -> usize {
        self.vec.len()
    }
    fn split_tail(&mut self, count: usize) -> Self {
        let tail = self.vec.split_off(self.vec.len() - count);
        VecSource { vec: tail }
    }
    fn drain(self, each: impl FnMut(T)) {
        self.vec.into_iter().for_each(each);
    }
}

/// Integer types usable as parallel range bounds.
pub trait ParIndex: Copy + Send {
    /// `self + n`, for walking a chunk.
    fn offset(self, n: usize) -> Self;
    /// Number of steps in `self..=other` (0 when `other < self`).
    fn span_inclusive(self, other: Self) -> usize;
}

/// Integer-range source (`(a..b).into_par_iter()`).
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

impl<T: ParIndex> ParallelSource for RangeSource<T> {
    type Item = T;
    fn length(&self) -> usize {
        self.len
    }
    fn split_tail(&mut self, count: usize) -> Self {
        self.len -= count;
        RangeSource {
            start: self.start.offset(self.len),
            len: count,
        }
    }
    fn drain(self, mut each: impl FnMut(T)) {
        for step in 0..self.len {
            each(self.start.offset(step));
        }
    }
}

/// `x.into_par_iter()` — conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// Element type.
    type Item: Send;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<VecSource<T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: VecSource { vec: self },
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelIterator for &'data [T] {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelIterator for &'data Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

macro_rules! par_index_impls {
    ($($ty:ty),* $(,)?) => {$(
        impl ParIndex for $ty {
            #[inline]
            fn offset(self, n: usize) -> Self {
                self + n as $ty
            }
            #[inline]
            fn span_inclusive(self, other: Self) -> usize {
                if other < self {
                    0
                } else {
                    (other as i128 - self as i128) as usize + 1
                }
            }
        }

        impl IntoParallelIterator for std::ops::Range<$ty> {
            type Item = $ty;
            type Iter = ParIter<RangeSource<$ty>>;
            fn into_par_iter(self) -> Self::Iter {
                let len = if self.end <= self.start {
                    0
                } else {
                    (self.end as i128 - self.start as i128) as usize
                };
                ParIter {
                    source: RangeSource { start: self.start, len },
                }
            }
        }

        impl IntoParallelIterator for std::ops::RangeInclusive<$ty> {
            type Item = $ty;
            type Iter = ParIter<RangeSource<$ty>>;
            fn into_par_iter(self) -> Self::Iter {
                let (start, end) = (*self.start(), *self.end());
                ParIter {
                    source: RangeSource {
                        start,
                        len: start.span_inclusive(end),
                    },
                }
            }
        }
    )*};
}

par_index_impls!(u16, u32, u64, usize, i32, i64);

/// `slice.par_iter()` — parallel iterator over `&T`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type (a reference).
    type Item: Send + 'data;
    /// The resulting parallel iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrows `self` into a parallel iterator.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;
    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;
    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

/// Collection types `collect` can target.
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds `Self` from a drained source, preserving order.
    fn from_par_source<S: ParallelSource<Item = T>>(source: S) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_par_source<S: ParallelSource<Item = T>>(source: S) -> Self {
        let chunks = execute_chunks(source, |piece| {
            let mut items = Vec::with_capacity(piece.length());
            piece.drain(|item| items.push(item));
            items
        });
        let mut out = Vec::with_capacity(chunks.iter().map(Vec::len).sum());
        for chunk in chunks {
            out.extend(chunk);
        }
        out
    }
}

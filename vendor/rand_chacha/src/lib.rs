//! In-repo ChaCha random generators (offline stand-in for `rand_chacha`).
//!
//! Implements the actual ChaCha stream cipher keystream (D. J. Bernstein)
//! with the `rand_chacha` 0.3 state layout — 4 constant words, 8 key
//! words, a 64-bit block counter in words 12–13 and a 64-bit stream id in
//! words 14–15 — so seeded streams are identical to the real crate's for
//! the common `from_seed`/`next_u32`/`next_u64`/`fill_bytes` surface the
//! workspace uses. The repo's simulations were calibrated against these
//! streams; keeping them bit-exact keeps every figure reproducible.

use rand::{RngCore, SeedableRng};

macro_rules! chacha_rng {
    ($name:ident, $doc_rounds:literal, $double_rounds:expr) => {
        #[doc = concat!("ChaCha with ", $doc_rounds, " rounds.")]
        #[derive(Debug, Clone)]
        pub struct $name {
            /// Input block: constants, key, counter, stream id.
            state: [u32; 16],
            /// Current keystream block.
            buf: [u32; 16],
            /// Next word index into `buf` (16 = exhausted).
            idx: usize,
        }

        impl $name {
            fn refill(&mut self) {
                self.buf = chacha_block(&self.state, $double_rounds);
                // 64-bit block counter in words 12..14.
                let (lo, carry) = self.state[12].overflowing_add(1);
                self.state[12] = lo;
                if carry {
                    self.state[13] = self.state[13].wrapping_add(1);
                }
                self.idx = 0;
            }

            /// Selects a stream id (words 14–15), restarting the stream.
            pub fn set_stream(&mut self, stream: u64) {
                self.state[14] = stream as u32;
                self.state[15] = (stream >> 32) as u32;
                self.state[12] = 0;
                self.state[13] = 0;
                self.idx = 16;
            }
        }

        impl RngCore for $name {
            fn next_u32(&mut self) -> u32 {
                if self.idx >= 16 {
                    self.refill();
                }
                let w = self.buf[self.idx];
                self.idx += 1;
                w
            }

            fn next_u64(&mut self) -> u64 {
                // rand_core's BlockRng order: low word first.
                let lo = self.next_u32() as u64;
                let hi = self.next_u32() as u64;
                (hi << 32) | lo
            }

            fn fill_bytes(&mut self, dest: &mut [u8]) {
                let mut chunks = dest.chunks_exact_mut(4);
                for chunk in &mut chunks {
                    chunk.copy_from_slice(&self.next_u32().to_le_bytes());
                }
                let rest = chunks.into_remainder();
                if !rest.is_empty() {
                    let n = rest.len();
                    rest.copy_from_slice(&self.next_u32().to_le_bytes()[..n]);
                }
            }
        }

        impl SeedableRng for $name {
            type Seed = [u8; 32];

            fn from_seed(seed: Self::Seed) -> Self {
                let mut state = [0u32; 16];
                // "expand 32-byte k"
                state[0] = 0x6170_7865;
                state[1] = 0x3320_646E;
                state[2] = 0x7962_2D32;
                state[3] = 0x6B20_6574;
                for (i, chunk) in seed.chunks_exact(4).enumerate() {
                    state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                }
                // counter = 0, stream id = 0.
                Self {
                    state,
                    buf: [0; 16],
                    idx: 16,
                }
            }
        }
    };
}

chacha_rng!(ChaCha8Rng, "8", 4);
chacha_rng!(ChaCha12Rng, "12", 6);
chacha_rng!(ChaCha20Rng, "20", 10);

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

fn chacha_block(input: &[u32; 16], double_rounds: usize) -> [u32; 16] {
    let mut x = *input;
    for _ in 0..double_rounds {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (o, i) in x.iter_mut().zip(input) {
        *o = o.wrapping_add(*i);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 test vector (ChaCha20, block counter 1).
    #[test]
    fn chacha20_block_matches_rfc8439() {
        let mut state = [0u32; 16];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        state[12] = 1; // counter
        state[13] = 0x0900_0000; // nonce words as laid out in the RFC
        state[14] = 0x4A00_0000;
        state[15] = 0;
        let out = chacha_block(&state, 10);
        assert_eq!(out[0], 0xE4E7_F110);
        assert_eq!(out[1], 0x1559_3BD1);
        assert_eq!(out[15], 0x4E3C_50A2);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::from_seed([7; 32]);
        let mut b = ChaCha8Rng::from_seed([7; 32]);
        let mut c = ChaCha8Rng::from_seed([8; 32]);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::from_seed([3; 32]);
        let mut b = ChaCha8Rng::from_seed([3; 32]);
        let mut bytes = [0u8; 12];
        a.fill_bytes(&mut bytes);
        let w0 = b.next_u32().to_le_bytes();
        let w1 = b.next_u32().to_le_bytes();
        let w2 = b.next_u32().to_le_bytes();
        let expect: Vec<u8> = [w0, w1, w2].concat();
        assert_eq!(bytes.to_vec(), expect);
    }

    #[test]
    fn unit_interval_draws_cover_the_range() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::from_seed([42; 32]);
        let draws: Vec<f64> = (0..4096).map(|_| rng.gen::<f64>()).collect();
        assert!(draws.iter().all(|x| (0.0..1.0).contains(x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}

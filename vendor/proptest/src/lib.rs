//! Deterministic property-testing stand-in for `proptest`.
//!
//! The container builds offline, so the workspace vendors the slice of
//! proptest it uses: the [`proptest!`] macro with `arg in strategy`
//! bindings, range strategies over ints/floats, tuple strategies, and
//! [`collection::vec`]. Differences from the real crate, by design:
//!
//! * **No shrinking.** A failing case reports its exact inputs instead.
//! * **Deterministic.** Cases derive from a fixed per-test seed, so runs
//!   are reproducible without `proptest-regressions` files (which are
//!   ignored).
//! * 256 cases per property (proptest's default).

use std::ops::{Range, RangeInclusive};

/// Deterministic generator (SplitMix64) driving all strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test's name hash; each case advances the stream.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53-bit precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// FNV-1a over a test name, used to seed its [`TestRng`].
pub fn seed_from_name(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % width;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % width;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length bounds for [`vec`], convertible from ranges or a fixed size.
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            Self {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                min: *r.start(),
                max_exclusive: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` with length in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.min < self.size.max_exclusive, "empty size range");
            let width = (self.size.max_exclusive - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % width) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy yielding `None` ~25% of the time (proptest's default
    /// weighting), `Some(inner)` otherwise.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `proptest::option::of(strategy)`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Why a single case did not pass: hard failure or assumption reject.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// `prop_assume!` rejected the inputs; case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        Self::Fail(message.into())
    }

    /// Builds a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::Reject(message.into())
    }
}

/// Runner configuration (`ProptestConfig`); only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Declares property tests: `fn name(arg in strategy, ...) { body }`
/// items become `#[test]` functions running 256 deterministic cases
/// (or `#![proptest_config(...)]` cases).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] items; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (
        ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempts: u32 = 0;
            while passed < config.cases {
                attempts += 1;
                assert!(
                    attempts <= config.cases.saturating_mul(20),
                    "proptest: too many prop_assume! rejections"
                );
                let mut rng = $crate::TestRng::new(seed ^ (attempts as u64).wrapping_mul(0xA076_1D64_78BD_642F));
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)+
                // Inputs formatted up front: the body may consume them.
                let case_desc = [
                    $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+
                ].join(", ");
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => {}
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case #{} failed: {}\n  inputs: {}",
                            passed + 1, msg, case_desc
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// `assert!` that reports the failing case's inputs (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    l == r,
                    "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The usual `use proptest::prelude::*;` imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig, Strategy, TestCaseError,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let x = Strategy::sample(&(3u32..10), &mut rng);
            assert!((3..10).contains(&x));
            let f = Strategy::sample(&(-1.0f64..2.0), &mut rng);
            assert!((-1.0..2.0).contains(&f));
            let b = Strategy::sample(&(1u8..=255), &mut rng);
            assert!(b >= 1);
        }
    }

    #[test]
    fn vec_strategy_respects_length() {
        let mut rng = TestRng::new(11);
        for _ in 0..200 {
            let v = Strategy::sample(&collection::vec(0u32..5, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
        }
    }

    #[test]
    fn determinism_same_seed_same_values() {
        let a: Vec<u64> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new(42);
            (0..10).map(|_| rng.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_runs_and_binds(x in 0u32..100, y in 0u32..100) {
            prop_assert!(x < 100 && y < 100);
            prop_assert_eq!(x + y, y + x);
        }

        #[test]
        fn assume_skips_cases(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3);
        }
    }
}

//! In-repo stand-in for the `bytes` crate's `Buf`/`BufMut` surface.
//!
//! [`BytesMut`] wraps a `Vec<u8>`, [`Bytes`] an immutable boxed slice;
//! little-endian put/get helpers cover the workunit manifest codec. No
//! reference-counted zero-copy splitting — the workspace never splits.

use std::ops::Deref;

/// Immutable byte buffer (frozen [`BytesMut`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: std::sync::Arc<[u8]>,
}

impl Bytes {
    /// Empty buffer.
    pub fn new() -> Self {
        Self {
            data: Vec::new().into(),
        }
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { data: data.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty buffer with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data.into(),
        }
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write-side trait (subset of `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait (subset of `bytes::Buf`).
///
/// Like the real crate, the `get_*` methods panic when the buffer has
/// fewer bytes than requested; callers bounds-check via [`remaining`]
/// (`Buf::remaining`) first.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies out `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR");
        buf.put_u16_le(0xBEEF);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_f64_le(-1.5);
        let frozen = buf.freeze();

        let mut r: &[u8] = &frozen;
        r.advance(3);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_f64_le(), -1.5);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        r.get_u32_le();
    }
}

//! Derive macros for the vendored serde stand-in.
//!
//! Hand-rolled token parsing (no `syn`/`quote` — the container builds
//! offline). Supports exactly the shapes the workspace derives on:
//!
//! * structs with named fields, tuple structs, unit structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation);
//! * no generic parameters, no `#[serde(...)]` attributes.
//!
//! Anything else is a compile-time panic with a pointed message, so an
//! unsupported shape fails loudly at the derive site instead of
//! misbehaving at run time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What one `#[derive]` input turned out to be.
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(vec![{}])\n}}\n}}",
                entries.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
             ::serde::Serialize::to_value(&self.0)\n}}\n}}"
        ),
        Shape::TupleStruct { name, arity } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Seq(vec![{}])\n}}\n}}",
                items.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => {
                            format!("Self::{vn} => ::serde::Value::Str(\"{vn}\".to_string())")
                        }
                        VariantKind::Tuple(1) => format!(
                            "Self::{vn}(x0) => ::serde::Value::Map(vec![(\
                             \"{vn}\".to_string(), ::serde::Serialize::to_value(x0))])"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(x{i})"))
                                .collect();
                            format!(
                                "Self::{vn}({}) => ::serde::Value::Map(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Seq(vec![{}]))])",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "Self::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\
                                 \"{vn}\".to_string(), ::serde::Value::Map(vec![{}]))])",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {} }}\n}}\n}}",
                arms.join(",\n")
            )
        }
    };
    body.parse()
        .expect("derive(Serialize): generated code parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_shape(input);
    let body = match &shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(value.get(\"{f}\")\
                         .ok_or_else(|| ::serde::DeError::missing_field(\"{f}\"))?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match value {{\n\
                 ::serde::Value::Map(_) => Ok(Self {{ {} }}),\n\
                 _ => Err(::serde::DeError::expected(\"object\", value)),\n\
                 }}\n}}\n}}",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
             Ok(Self(::serde::Deserialize::from_value(value)?))\n}}\n}}"
        ),
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 match value {{\n\
                 ::serde::Value::Seq(items) if items.len() == {arity} => \
                 Ok(Self({})),\n\
                 _ => Err(::serde::DeError::expected(\"array\", value)),\n\
                 }}\n}}\n}}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(_value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
             Ok(Self)\n}}\n}}"
        ),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => return Ok(Self::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => return Ok(Self::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                 if let ::serde::Value::Seq(items) = inner {{\n\
                                 if items.len() == {n} {{\n\
                                 return Ok(Self::{vn}({}));\n}}\n}}\n\
                                 return Err(::serde::DeError::expected(\
                                 \"array\", inner));\n}}",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Struct(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.get(\"{f}\").ok_or_else(|| \
                                         ::serde::DeError::missing_field(\"{f}\"))?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => return Ok(Self::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n\
                 if let ::serde::Value::Str(s) = value {{\n\
                 match s.as_str() {{ {} _ => {{}} }}\n}}\n\
                 if let ::serde::Value::Map(entries) = value {{\n\
                 if entries.len() == 1 {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{ {} _ => {{}} }}\n}}\n}}\n\
                 Err(::serde::DeError::expected(\"variant of {name}\", value))\n\
                 }}\n}}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    body.parse()
        .expect("derive(Deserialize): generated code parses")
}

// ---------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------

fn parse_shape(input: TokenStream) -> Shape {
    let mut it = input.into_iter().peekable();
    skip_attrs_and_vis(&mut it);
    let kw = expect_ident(&mut it);
    let name = expect_ident(&mut it);
    if let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() == '<' {
            panic!(
                "vendored serde_derive: generic type `{name}` is not supported; \
                 write the impls by hand"
            );
        }
    }
    match kw.as_str() {
        "struct" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            other => panic!("vendored serde_derive: unexpected token after struct name: {other:?}"),
        },
        "enum" => match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("vendored serde_derive: expected enum body, got {other:?}"),
        },
        other => panic!("vendored serde_derive: expected struct or enum, got `{other}`"),
    }
}

type TokenIter = std::iter::Peekable<proc_macro::token_stream::IntoIter>;

/// Skips `#[...]` attributes (incl. doc comments) and a `pub` /
/// `pub(crate)` visibility prefix.
fn skip_attrs_and_vis(it: &mut TokenIter) {
    loop {
        match it.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                it.next();
                // The bracket group of the attribute.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                it.next();
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(it: &mut TokenIter) -> String {
    match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("vendored serde_derive: expected identifier, got {other:?}"),
    }
}

/// Field names of a named-field body. Types are irrelevant: the generated
/// code lets inference pick the right `Deserialize` impl.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        fields.push(expect_ident(&mut it));
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("vendored serde_derive: expected `:`, got {other:?}"),
        }
        skip_type(&mut it);
    }
    fields
}

/// Consumes a type up to a top-level `,` (or the end). Parens/brackets
/// arrive as single `Group` tokens, so only `<`/`>` depth needs tracking.
fn skip_type(it: &mut TokenIter) {
    let mut angle_depth = 0i32;
    while let Some(tt) = it.peek() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                it.next();
                return;
            }
            _ => {}
        }
        it.next();
    }
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut it = body.into_iter().peekable();
    let mut count = 0;
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut it);
    }
    count
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut it);
        if it.peek().is_none() {
            break;
        }
        let name = expect_ident(&mut it);
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Struct(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                it.next();
                VariantKind::Tuple(arity)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the separating comma.
        while let Some(tt) = it.peek() {
            if matches!(tt, TokenTree::Punct(p) if p.as_char() == ',') {
                it.next();
                break;
            }
            it.next();
        }
        variants.push(Variant { name, kind });
    }
    variants
}

//! Micro-benchmark harness with `criterion`'s API shape.
//!
//! The container builds offline, so the workspace vendors the slice of
//! criterion it calls: [`Criterion::bench_function`], benchmark groups,
//! [`BenchmarkId`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Measurement is a calibrated mean over a wall-clock-budgeted
//! batch — no bootstrap statistics, no HTML reports, but stable enough
//! for the repo's relative comparisons (e.g. telemetry overhead).

use std::hint;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

static SMOKE: AtomicBool = AtomicBool::new(false);

/// Reads the bench binary's CLI arguments (called by [`criterion_main!`]
/// before any group runs): `--test` or `--quick` puts the harness in
/// smoke mode, where every benchmark executes its routine exactly once —
/// CI uses this to prove the benches still run without paying for
/// calibrated measurement.
pub fn configure_from_args() {
    let smoke = std::env::args()
        .skip(1)
        .any(|arg| arg == "--test" || arg == "--quick");
    SMOKE.store(smoke, Ordering::Relaxed);
}

/// True when the harness is in single-iteration smoke mode.
pub fn smoke_mode() -> bool {
    SMOKE.load(Ordering::Relaxed)
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration (filled by [`iter`]).
    mean_ns: f64,
    iters: u64,
    target: Duration,
    smoke: bool,
}

impl Bencher {
    /// Times `routine`, calibrating the iteration count to the harness's
    /// time budget. The routine's return value is black-boxed.
    pub fn iter<T, R: FnMut() -> T>(&mut self, mut routine: R) {
        if self.smoke {
            // Smoke mode: run once to prove the routine works.
            let start = Instant::now();
            hint::black_box(routine());
            self.mean_ns = start.elapsed().as_nanos() as f64;
            self.iters = 1;
            return;
        }
        // Warm up and estimate a single-iteration cost.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.target / 10 && warmup_iters < 100_000 {
            hint::black_box(routine());
            warmup_iters += 1;
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters.max(1) as f64;
        let iters = ((self.target.as_secs_f64() / per_iter.max(1e-9)) as u64).clamp(10, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            hint::black_box(routine());
        }
        let elapsed = start.elapsed();
        self.mean_ns = elapsed.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn human_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_bench(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    // sample_size scales the time budget the way criterion's does:
    // fewer samples => the caller knows the routine is slow.
    let budget = Duration::from_millis(20 * sample_size.clamp(2, 20) as u64);
    let mut b = Bencher {
        mean_ns: 0.0,
        iters: 0,
        target: budget,
        smoke: smoke_mode(),
    };
    f(&mut b);
    println!(
        "bench {name:<44} {:>12}/iter  ({} iters)",
        human_ns(b.mean_ns),
        b.iters
    );
}

/// Benchmark identifier (`BenchmarkId::new("fn", param)`).
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Function-plus-parameter id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self {
            text: format!("{function}/{parameter}"),
        }
    }

    /// Parameter-only id.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the sample count (scales the per-bench time budget here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
        }
    }
}

/// A named group; benches print as `group/bench`.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_bench(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(self) {}
}

/// Declares a bench group function from `fn(&mut Criterion)` targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`: applies CLI flags (`--test` /
/// `--quick` → smoke mode), then runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::configure_from_args();
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.sample_size(2);
        c.bench_function("noop_sum", |b| {
            b.iter(|| (0..100u64).sum::<u64>());
        });
    }

    #[test]
    fn smoke_bencher_runs_exactly_once() {
        let mut b = Bencher {
            mean_ns: 0.0,
            iters: 0,
            target: Duration::from_millis(1),
            smoke: true,
        };
        let mut calls = 0u32;
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert_eq!(b.iters, 1);
        assert!(b.mean_ns >= 0.0);
    }

    #[test]
    fn group_and_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &n| {
            b.iter(|| n * 2);
        });
        g.finish();
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter(9).to_string(), "9");
    }
}

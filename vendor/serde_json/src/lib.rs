//! JSON printing and parsing over the vendored serde's [`Value`] tree.
//!
//! Offline stand-in for `serde_json` covering the workspace's surface:
//! [`to_string`], [`to_string_pretty`], [`to_writer`] plus a line-oriented
//! variant for JSONL sinks, and [`from_str`] for round-trips.

use serde::{Deserialize, Serialize, Value};
use std::fmt::Write as _;

pub use serde::DeError;

/// Errors from this module (parsing or value conversion).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Self::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to pretty JSON (2-space indent, like serde_json).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes compact JSON into an `io::Write`.
pub fn to_writer<W: std::io::Write, T: Serialize>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(e.to_string()))
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let value = parse_value(text)?;
    Ok(T::from_value(&value)?)
}

/// Parses JSON text into a [`Value`] tree.
pub fn parse_value(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => {
            if x.fract() == 0.0 && x.abs() < 1e15 {
                // Keep the decimal point so floats stay floats on re-read
                // by stricter parsers (serde_json prints 1.0, not 1).
                let _ = write!(out, "{x:.1}");
            } else {
                let _ = write!(out, "{x}");
            }
        }
        Value::Str(s) => write_json_string(out, s),
        Value::Seq(items) => write_seq(out, items, indent, depth),
        Value::Map(entries) => write_map(out, entries, indent, depth),
    }
}

fn write_seq(out: &mut String, items: &[Value], indent: Option<usize>, depth: usize) {
    if items.is_empty() {
        out.push_str("[]");
        return;
    }
    out.push('[');
    for (i, item) in items.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_value(out, item, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push(']');
}

fn write_map(out: &mut String, entries: &[(String, Value)], indent: Option<usize>, depth: usize) {
    if entries.is_empty() {
        out.push_str("{}");
        return;
    }
    out.push('{');
    for (i, (k, v)) in entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        newline_indent(out, indent, depth + 1);
        write_json_string(out, k);
        out.push(':');
        if indent.is_some() {
            out.push(' ');
        }
        write_value(out, v, indent, depth + 1);
    }
    newline_indent(out, indent, depth);
    out.push('}');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(Error::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("bad \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the byte position.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_print() {
        let v = Value::Map(vec![
            ("a".into(), Value::I64(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v).unwrap(), r#"{"a":1,"b":[true,null]}"#);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
    }

    #[test]
    fn parse_round_trip() {
        let text = r#"{"x": [1, 2.5, "s\n", {"y": null}], "z": -7}"#;
        let v = parse_value(text).unwrap();
        let printed = to_string(&v).unwrap();
        let reparsed = parse_value(&printed).unwrap();
        assert_eq!(v, reparsed);
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<f64> = from_str("[1, 2.5, 3]").unwrap();
        assert_eq!(xs, vec![1.0, 2.5, 3.0]);
        let pair: (u32, bool) = from_str("[4, true]").unwrap();
        assert_eq!(pair, (4, true));
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(from_str::<u32>("\"no\"").is_err());
    }
}

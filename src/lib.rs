//! `hcmd-grid` — reproduction of *"Large Scale Execution of a Bioinformatic
//! Application on a Volunteer Grid"* (Bertis, Bolze, Desprez, Reed;
//! LIP RR-2007-49 / IPPS 2008).
//!
//! This umbrella crate re-exports the whole workspace so examples and
//! downstream users can depend on a single crate:
//!
//! * [`maxdo`] — the MAXDo cross-docking application substrate (reduced
//!   protein model, interaction energy, multi-start minimisation).
//! * [`timemodel`] — the §4.1 behaviour model (compute-time matrix,
//!   linearity, formula (1)).
//! * [`workunit`] — §4.2 workunit packaging.
//! * [`gridsim`] — the volunteer-grid (World Community Grid style) and
//!   dedicated-grid discrete-event simulators.
//! * [`validation`] — §5.2 result processing and verification.
//! * [`metrics`] — virtual full-time processors, speed-down analysis,
//!   histograms, regression.
//! * [`hcmd`] — the end-to-end campaign orchestration, Table 2 grid
//!   comparison and §7 phase-II projection.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record of every table and figure.

pub use gridsim;
pub use hcmd;
pub use maxdo;
pub use metrics;
pub use timemodel;
pub use validation;
pub use workunit;
